"""Print the paper-style evaluation rows from direct timings.

Run:  python benchmarks/report.py            # full text report
      python benchmarks/report.py --json     # engine comparison -> BENCH_report.json

This regenerates, in one screenful, the numbers the paper reports in
Section 9.1 and Figure 11:

* the tracer's slowdown over the standard interpreter (paper: ~11% —
  measured both at the paper's low-activity operating point and under
  full tracing);
* the instrumented program's speedup over the monitored and standard
  interpreters (paper: ~85% and ~83% faster);
* the Figure 11 series: run time vs. number of requested trace
  printouts, with the linear fit and the convergence-to-baseline check;
* the T-ENG series: all three engine tiers — reference interpreter,
  staged fast path (:mod:`repro.semantics.compiled`), and residual
  native code (:mod:`repro.partial_eval.codegen`) — on the same
  workloads.

``--json`` runs only the engine comparison and **merges** machine-
readable ``engines`` and ``codegen`` sections into ``BENCH_report.json``
at the repository root (CI's benchmark smoke test), preserving the
``batch`` section written by ``benchmarks/bench_batch.py``.  It exits
non-zero if the compiled engine is slower than the reference on fib or
the codegen engine misses its 3x-over-compiled gate.  ``--quick``
shrinks workloads for smoke runs.

Numbers are written to stdout; EXPERIMENTS.md records a reference run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from statistics import median

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _REPO_ROOT)
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import TracerMonitor
from repro.partial_eval.codegen import generate_program
from repro.partial_eval.compile import compile_program

from benchmarks.workloads import loop_with_trace_hits, plain_fib, traced_fib

FIB_N = 15
REPEATS = 5


def best_time(thunk, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        thunk()
        times.append(time.perf_counter() - start)
    return median(times)


def pct_slower(slow: float, fast: float) -> float:
    return (slow / fast - 1.0) * 100.0


def pct_faster(fast: float, slow: float) -> float:
    return (1.0 - fast / slow) * 100.0


def section_9_1() -> None:
    print("=" * 72)
    print("T-SPEC  (Section 9.1 specialization results)")
    print("=" * 72)

    plain = plain_fib(FIB_N)
    traced = traced_fib(FIB_N)
    tracer = TracerMonitor()

    t_std = best_time(lambda: strict.evaluate(plain))
    t_mon = best_time(lambda: run_monitored(strict, traced, tracer))
    compiled = compile_program(traced, tracer)
    t_compiled = best_time(lambda: compiled.run())
    residual = generate_program(traced, tracer)
    t_residual = best_time(lambda: residual.run())
    residual_plain = generate_program(plain)
    t_residual_plain = best_time(lambda: residual_plain.run())

    print(f"standard interpreter                 {t_std * 1000:8.1f} ms")
    print(f"monitored interpreter (full trace)   {t_mon * 1000:8.1f} ms")
    print(f"instrumented program (compiled)      {t_compiled * 1000:8.1f} ms")
    print(f"instrumented program (residual py)   {t_residual * 1000:8.1f} ms")
    print(f"plain program (residual py)          {t_residual_plain * 1000:8.1f} ms")
    print()
    print("paper: tracer ~11% slower than the standard interpreter")
    print(
        f"measured (full tracing, every call):      {pct_slower(t_mon, t_std):6.1f}% slower"
    )

    # The paper's 11% corresponds to modest monitoring activity; measure
    # the overhead at a low-activity operating point too (see F-11).
    sparse = loop_with_trace_hits(2000, 50)
    sparse_plain = loop_with_trace_hits(2000, 0)
    t_sparse_mon = best_time(lambda: run_monitored(strict, sparse, tracer))
    t_sparse_std = best_time(lambda: strict.evaluate(sparse_plain))
    print(
        f"measured (sparse tracing, 2.5% of calls): "
        f"{pct_slower(t_sparse_mon, t_sparse_std):6.1f}% slower"
    )
    print()
    print("paper: instrumented program ~85% faster than monitored interpreter")
    print(f"measured (residual python):               {pct_faster(t_residual, t_mon):6.1f}% faster")
    print("paper: instrumented program ~83% faster than standard interpreter")
    print(f"measured (residual python):               {pct_faster(t_residual, t_std):6.1f}% faster")
    print()


def figure_11() -> None:
    print("=" * 72)
    print("F-11  (Figure 11: run time vs. number of trace printouts)")
    print("=" * 72)

    total = 2000
    hit_counts = [0, 50, 200, 500, 1000, 2000]
    tracer = TracerMonitor()

    baseline_program = loop_with_trace_hits(total, 0)
    t_baseline = best_time(lambda: strict.evaluate(baseline_program))
    print(f"standard interpreter baseline: {t_baseline * 1000:8.1f} ms")
    print()
    print(f"{'trace hits':>10}  {'time (ms)':>10}  {'overhead vs std':>16}")

    points = []
    for hits in hit_counts:
        program = loop_with_trace_hits(total, hits)
        t = best_time(lambda: run_monitored(strict, program, tracer))
        points.append((hits, t))
        print(f"{hits:>10}  {t * 1000:>10.1f}  {pct_slower(t, t_baseline):>15.1f}%")

    # Least-squares slope: cost per trace printout.
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    slope = sum((x - mean_x) * (y - mean_y) for x, y in points) / sum(
        (x - mean_x) ** 2 for x, _ in points
    )
    intercept = mean_y - slope * mean_x
    print()
    print(f"linear fit: {slope * 1e6:.1f} us per trace printout, "
          f"intercept {intercept * 1000:.1f} ms")
    print(
        "paper: performance approaches the standard interpreter as "
        "monitoring activity decreases;"
    )
    print(
        f"measured: zero-activity monitored run is "
        f"{pct_slower(points[0][1], t_baseline):.1f}% over the baseline"
    )
    print()


def measure_engines(quick: bool = False, repeats: int = REPEATS):
    """Time all three execution engines end-to-end on the T-ENG workloads.

    Returns a list of row dicts: workload name, per-engine medians (in
    seconds), the reference/compiled speedup, and the codegen tier's
    speedups over both lower tiers.  Timings go through the public API,
    so the compiled/codegen rows include compilation.
    """
    # Timings include compilation (public-API, end-to-end), so the gated
    # fib row keeps its full size even under --quick: the codegen tier's
    # fixed compile cost (~0.3 ms of source emission + exec) must stay a
    # small share of the run being measured or the ratio sags toward the
    # gate.  Only the ungated loop row shrinks.
    fib_n = FIB_N
    loop_n = 1000 if quick else 2000
    tracer = TracerMonitor()

    workloads = [
        (
            "fib_unmonitored",
            plain_fib(fib_n),
            lambda p, engine: strict.evaluate(p, engine=engine),
        ),
        (
            "loop_unmonitored",
            loop_with_trace_hits(loop_n, 0),
            lambda p, engine: strict.evaluate(p, engine=engine),
        ),
        (
            "fib_traced_monitored",
            traced_fib(fib_n),
            lambda p, engine: run_monitored(strict, p, tracer, engine=engine),
        ),
        # Figure 11's shape: fixed work, a 2% slice of traced iterations.
        # This is the monitored row that gates *engine* overhead — the
        # fully-traced fib row above is dominated by the tracer's own hook
        # cost, which both fast engines share — so its size is fixed (not
        # shrunk by --quick) to keep the measured ratio stable.
        (
            "loop_traced_monitored",
            loop_with_trace_hits(5000, 100),
            lambda p, engine: run_monitored(strict, p, tracer, engine=engine),
        ),
    ]

    rows = []
    for name, program, run in workloads:
        # Interleave the engines round by round so machine-load drift
        # lands on all three alike — the gated *ratios* stay stable even
        # when absolute timings wander.
        times = {"reference": [], "compiled": [], "codegen": []}
        for _ in range(repeats):
            for engine in ("reference", "compiled", "codegen"):
                start = time.perf_counter()
                run(program, engine)
                times[engine].append(time.perf_counter() - start)
        t_ref = median(times["reference"])
        t_com = median(times["compiled"])
        t_gen = median(times["codegen"])
        rows.append(
            {
                "workload": name,
                "monitored": name.endswith("monitored")
                and not name.endswith("unmonitored"),
                "reference_s": t_ref,
                "compiled_s": t_com,
                "codegen_s": t_gen,
                "speedup": t_ref / t_com,
                "codegen_speedup_vs_reference": t_ref / t_gen,
                "codegen_speedup_vs_compiled": t_com / t_gen,
                "compiled_spread": _sample_spread(times["compiled"]),
                "codegen_spread": _sample_spread(times["codegen"]),
            }
        )
    return rows


def _sample_spread(samples) -> float:
    """Relative scatter of a timing sample set: (median - min) / min."""
    lo = min(samples)
    return (median(samples) - lo) / lo if lo > 0 else float("inf")


#: Above this spread on a gated row the box is too loaded for the hard
#: exit-1 gate (matches benchmarks/bench_engines.py's threshold).
NOISE_SPREAD_THRESHOLD = 0.5


def _noise_reasons(gate_rows):
    """Why the codegen gate should demote to informational ([] = gate)."""
    reasons = []
    cpus = os.cpu_count() or 1
    if cpus < 2:
        reasons.append(f"single-core machine (os.cpu_count() == {cpus})")
    for row in gate_rows:
        for engine in ("compiled", "codegen"):
            spread = row[f"{engine}_spread"]
            if spread > NOISE_SPREAD_THRESHOLD:
                reasons.append(
                    f"{row['workload']}: {engine} timing spread {spread:.0%} "
                    f"over its min (threshold {NOISE_SPREAD_THRESHOLD:.0%})"
                )
    return reasons


#: Headline targets for the staged engine (checked in the JSON report).
ENGINE_TARGETS = {"unmonitored_speedup": 3.0, "monitored_speedup": 2.0}

#: The codegen tier's gate: ≥3x over the compiled tier on both the
#: unmonitored and the monitored workloads.
CODEGEN_TARGETS = {
    "vs_compiled_unmonitored": 3.0,
    "vs_compiled_monitored": 3.0,
}


def engines_section(quick: bool = False):
    print("=" * 72)
    print("T-ENG  (engine tiers vs. reference interpreter)")
    print("=" * 72)
    rows = measure_engines(quick=quick)
    print(
        f"{'workload':<22} {'reference':>12} {'compiled':>12} {'codegen':>12} "
        f"{'com/gen':>8}"
    )
    for row in rows:
        print(
            f"{row['workload']:<22} {row['reference_s'] * 1000:>9.1f} ms "
            f"{row['compiled_s'] * 1000:>9.1f} ms "
            f"{row['codegen_s'] * 1000:>9.1f} ms "
            f"{row['codegen_speedup_vs_compiled']:>7.2f}x"
        )
    print()
    print(
        f"compiled targets: >= {ENGINE_TARGETS['unmonitored_speedup']:.0f}x "
        f"unmonitored, >= {ENGINE_TARGETS['monitored_speedup']:.0f}x monitored; "
        f"codegen target: >= "
        f"{CODEGEN_TARGETS['vs_compiled_unmonitored']:.0f}x over compiled"
    )
    print()
    return rows


def json_report(quick: bool, output: str) -> int:
    """CI's benchmark smoke test: engine rows -> JSON, gated on both tiers.

    Merges ``engines`` and ``codegen`` sections into the report file (via
    :mod:`benchmarks.reporting`), preserving sections other scripts wrote.
    """
    from benchmarks.reporting import merge_section

    rows = measure_engines(quick=quick, repeats=3 if quick else REPEATS)
    by_name = {row["workload"]: row for row in rows}
    targets_met = {
        "unmonitored_speedup": min(
            by_name["fib_unmonitored"]["speedup"],
            by_name["loop_unmonitored"]["speedup"],
        )
        >= ENGINE_TARGETS["unmonitored_speedup"],
        "monitored_speedup": by_name["fib_traced_monitored"]["speedup"]
        >= ENGINE_TARGETS["monitored_speedup"],
    }
    engines_payload = {
        "quick": quick,
        "repeats": 3 if quick else REPEATS,
        "workloads": rows,
        "targets": ENGINE_TARGETS,
        "targets_met": targets_met,
    }
    # Gate rows: fib (the Section 9.1 headline) for unmonitored, the
    # Figure 11 sparse-traced loop for monitored.  The deep-recursion
    # plain loop and the hook-dominated traced fib stay informational —
    # the former measures host-stack cost, the latter shared hook cost.
    codegen_vs_compiled = {
        "vs_compiled_unmonitored": by_name["fib_unmonitored"][
            "codegen_speedup_vs_compiled"
        ],
        "vs_compiled_monitored": by_name["loop_traced_monitored"][
            "codegen_speedup_vs_compiled"
        ],
    }
    codegen_targets_met = {
        key: codegen_vs_compiled[key] >= CODEGEN_TARGETS[key]
        for key in CODEGEN_TARGETS
    }
    noise = _noise_reasons(
        (by_name["fib_unmonitored"], by_name["loop_traced_monitored"])
    )
    codegen_payload = {
        "quick": quick,
        "speedups": codegen_vs_compiled,
        "vs_reference": {
            row["workload"]: row["codegen_speedup_vs_reference"] for row in rows
        },
        "targets": CODEGEN_TARGETS,
        "targets_met": codegen_targets_met,
        "noise": noise,
    }
    merge_section(output, "engines", engines_payload)
    merge_section(output, "codegen", codegen_payload)

    for row in rows:
        print(
            f"{row['workload']:<22} {row['reference_s'] * 1000:>9.1f} ms -> "
            f"{row['compiled_s'] * 1000:>9.1f} ms -> "
            f"{row['codegen_s'] * 1000:>9.1f} ms  "
            f"(codegen {row['codegen_speedup_vs_compiled']:.2f}x over compiled)"
        )
    print(f"merged 'engines' and 'codegen' sections into {output}")

    fib_speedup = by_name["fib_unmonitored"]["speedup"]
    if fib_speedup < 1.0:
        print(
            f"FAIL: compiled engine slower than reference on fib "
            f"({fib_speedup:.2f}x)",
            file=sys.stderr,
        )
        return 1
    failed = [key for key, met in codegen_targets_met.items() if not met]
    if failed:
        for key in failed:
            print(
                f"FAIL: codegen {codegen_vs_compiled[key]:.2f}x over compiled "
                f"on {key} (gate >= {CODEGEN_TARGETS[key]:.1f}x)",
                file=sys.stderr,
            )
        if noise:
            # A single-core or heavily-loaded box cannot support a hard
            # ratio gate: demote to informational, loudly, instead of
            # flaking CI on machine load.
            print(
                "PERF GATE DEMOTED TO INFORMATIONAL — environment unfit "
                "for a hard gate: " + "; ".join(noise),
                file=sys.stderr,
            )
            return 0
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="paper-style benchmark report (Section 9.1 / Figure 11 / T-ENG)"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="run only the engine comparison and write BENCH_report.json",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads and fewer repeats (CI smoke test)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_report.json"),
        help="JSON output path (default: BENCH_report.json at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.json:
        return json_report(quick=args.quick, output=args.output)

    section_9_1()
    figure_11()
    engines_section(quick=args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
