"""A-INLINE: ablation — what each piece of level-2 specialization buys.

Four rungs of the specialization ladder over the same ``fib`` workload:

1. tree interpreter (nothing specialized);
2. closure compiler without static primitive dispatch (syntax dispatch,
   environment search and annotation recognition specialized away);
3. closure compiler with static primitive dispatch;
4. residual Python (direct style — continuation overhead also gone).

Each rung removes one identifiable static computation; the deltas price
the paper's claim that partial evaluation removes "the interpretive
overhead associated with the static aspects" piece by piece.
"""

import pytest

from repro.languages import strict
from repro.partial_eval.codegen import generate_program
from repro.partial_eval.compile import compile_program

from benchmarks.workloads import plain_fib

FIB_N = 15
EXPECTED = 610


@pytest.fixture(scope="module")
def program():
    return plain_fib(FIB_N)


def test_rung1_tree_interpreter(benchmark, program):
    assert benchmark(lambda: strict.evaluate(program)) == EXPECTED


def test_rung2_compiled_no_prim_inlining(benchmark, program):
    compiled = compile_program(program, inline_primitives=False)
    assert benchmark(compiled.evaluate) == EXPECTED


def test_rung3_compiled_with_prim_inlining(benchmark, program):
    compiled = compile_program(program)
    assert benchmark(compiled.evaluate) == EXPECTED


def test_rung4_residual_python(benchmark, program):
    generated = generate_program(program)
    assert benchmark(generated.evaluate) == EXPECTED
