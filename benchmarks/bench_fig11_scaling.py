"""F-11: Figure 11 — run time vs. number of requested trace printouts.

The paper's figure plots the monitored interpreter's run time against the
number of trace printouts, for a fixed test program: the line is linear in
the monitoring activity and converges to the standard interpreter's time
as activity goes to zero — "essentially the *only* overhead in using the
monitored interpreter is the extra computation performed by the monitoring
activity".

Workload: a 2000-iteration loop in which exactly ``hits`` iterations pass
through a traced function (so program work is constant while monitoring
activity varies).  Each benchmark row is one x-axis point; the baseline
row is the standard interpreter on the same program.
``benchmarks/report.py`` fits the slope and checks the convergence.
"""

import pytest

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import TracerMonitor

from benchmarks.workloads import loop_with_trace_hits

TOTAL_ITERATIONS = 2000
HIT_COUNTS = [0, 50, 200, 500, 1000, 2000]


@pytest.mark.parametrize("hits", HIT_COUNTS)
def test_monitored_interpreter_trace_hits(benchmark, hits):
    program = loop_with_trace_hits(TOTAL_ITERATIONS, hits)
    monitor = TracerMonitor()

    def run():
        return run_monitored(strict, program, monitor)

    result = benchmark(run)
    assert result.answer == TOTAL_ITERATIONS
    trace = result.report("trace")
    assert trace.count("receives") == hits


def test_standard_interpreter_baseline(benchmark):
    # The x-axis origin Figure 11's monitored line converges to.
    program = loop_with_trace_hits(TOTAL_ITERATIONS, 0)
    result = benchmark(lambda: strict.evaluate(program))
    assert result == TOTAL_ITERATIONS
