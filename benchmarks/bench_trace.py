"""T-TRACE: the record-once / analyze-many trade against inline monitoring.

Run:  python benchmarks/bench_trace.py            # full workload -> stdout
      python benchmarks/bench_trace.py --quick    # CI smoke (smaller workload)

Two numbers tell the story of the trace backend:

* **Record overhead** (gated, ≤ 1.5x): a
  ``mode="record"`` run on the codegen engine against the plain
  unmonitored codegen run, on Figure 11's loop with a sparse traced
  slice — the realistic recording regime (record everything and the
  recorder's cost is the monitor's cost, which ``bench_engines`` already
  measures).  The gate is single-core safe: both arms are one process,
  interleaved min-of-N.

* **Post-hoc amortization** (informational, never gated): folding N
  monitor stacks over one recorded trace against running the program
  inline N times.  The fold never re-executes the program, so the win
  grows with N and with program cost; the measured ratio depends on the
  machine and is reported, not asserted.

The script merges a ``"trace"`` section into ``BENCH_report.json``
(preserving other sections) and exits non-zero if the record-overhead
gate fails.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _REPO_ROOT)
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.languages.strict import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import (
    CollectingMonitor,
    LabelCounterMonitor,
    ProfilerMonitor,
    TracerMonitor,
)
from repro.runtime.config import RunConfig
from repro.tracing import analyze_many, record

from benchmarks.workloads import loop_with_trace_hits

#: The gate: recording may cost at most this factor over the plain
#: unmonitored codegen run on the sparse-traced Figure 11 loop.
RECORD_OVERHEAD_BUDGET = 1.5
TIMER_EPSILON = 1e-3  # seconds

#: Figure 11 regime: fixed program work, a thin traced slice.
TOTAL_ITERATIONS = 20_000
TRACED_ITERATIONS = 200


def _paired_min(thunk_a, thunk_b, repeats=9):
    """Interleaved min-of-N timing (see ``bench_engines._paired_min``)."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        thunk_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        thunk_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def _null_out():
    """A sink writer: measure recording, not the filesystem."""
    return open(os.devnull, "w")


def measure_record_overhead(total=TOTAL_ITERATIONS, traced=TRACED_ITERATIONS):
    program = loop_with_trace_hits(total, traced)
    config = RunConfig(engine="codegen")

    def plain():
        strict.evaluate(program, engine="codegen")

    def recorded():
        with _null_out() as out:
            record(
                strict,
                program,
                out,
                monitors=[TracerMonitor()],
                config=config,
            )

    t_plain, t_record = _paired_min(plain, recorded)
    return {
        "workload": f"loop({total}, traced={traced})",
        "plain_codegen_ms": t_plain * 1e3,
        "record_codegen_ms": t_record * 1e3,
        "overhead": t_record / t_plain if t_plain else float("inf"),
        "budget": RECORD_OVERHEAD_BUDGET,
    }


def test_record_overhead_within_budget():
    """The tentpole's cost gate: record ≤ 1.5x unmonitored codegen."""
    result = measure_record_overhead()
    assert (
        result["record_codegen_ms"]
        <= result["plain_codegen_ms"] * RECORD_OVERHEAD_BUDGET
        + TIMER_EPSILON * 1e3
    ), (
        f"record mode above {RECORD_OVERHEAD_BUDGET}x over plain codegen: "
        f"plain {result['plain_codegen_ms']:.2f} ms vs "
        f"record {result['record_codegen_ms']:.2f} ms "
        f"({result['overhead']:.2f}x)"
    )


def measure_posthoc_amortization(total=20_000, traced=2_000, repeats=3):
    """Informational: fold N stacks over one trace vs N inline runs.

    Thread-level post-hoc parallelism is *also* informational only — on
    a single-core box the fold's win comes from not re-running the
    program, not from threads.
    """
    import tempfile

    program = loop_with_trace_hits(total, traced)

    def stacks():
        return [
            [TracerMonitor()],
            [ProfilerMonitor()],
            [CollectingMonitor()],
            [LabelCounterMonitor()],
        ]

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.jsonl")
        start = time.perf_counter()
        record(
            strict,
            program,
            path,
            monitors=[TracerMonitor()],
            config=RunConfig(engine="codegen"),
        )
        t_record = time.perf_counter() - start

        t_inline = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for stack in stacks():
                run_monitored(strict, program, stack, engine="codegen")
            t_inline = min(t_inline, time.perf_counter() - start)

        t_fold = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            analyze_many(path, stacks(), check_disjointness=False)
            t_fold = min(t_fold, time.perf_counter() - start)

    return {
        "workload": f"loop({total}, traced={traced})",
        "stacks": 4,
        "record_once_ms": t_record * 1e3,
        "inline_4_stacks_ms": t_inline * 1e3,
        "fold_4_stacks_ms": t_fold * 1e3,
        "fold_speedup_over_inline": t_inline / t_fold if t_fold else 0.0,
    }


def run_matrix(quick: bool) -> dict:
    if quick:
        overhead = measure_record_overhead(total=5_000, traced=50)
        amortization = measure_posthoc_amortization(total=5_000, traced=500)
    else:
        overhead = measure_record_overhead()
        amortization = measure_posthoc_amortization()
    return {
        "record_overhead": overhead,
        "posthoc": amortization,
        "gate": {
            "budget": RECORD_OVERHEAD_BUDGET,
            "met": overhead["overhead"] <= RECORD_OVERHEAD_BUDGET,
        },
    }


def print_matrix(result: dict) -> None:
    overhead = result["record_overhead"]
    posthoc = result["posthoc"]
    print("T-TRACE: record-once / analyze-many")
    print(f"  workload           {overhead['workload']}")
    print(f"  plain codegen      {overhead['plain_codegen_ms']:.2f} ms")
    print(
        f"  record codegen     {overhead['record_codegen_ms']:.2f} ms "
        f"({overhead['overhead']:.2f}x, budget {overhead['budget']:.1f}x)"
    )
    print(
        f"  post-hoc ({posthoc['stacks']} stacks) record {posthoc['record_once_ms']:.1f} ms"
        f" + fold {posthoc['fold_4_stacks_ms']:.1f} ms"
        f" vs inline {posthoc['inline_4_stacks_ms']:.1f} ms"
        f" -> fold alone {posthoc['fold_speedup_over_inline']:.2f}x (informational)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller workload for CI smoke runs"
    )
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_report.json"),
        help="report file to merge the 'trace' section into",
    )
    args = parser.parse_args(argv)

    result = run_matrix(args.quick)
    print_matrix(result)
    from benchmarks.reporting import merge_section

    merge_section(args.output, "trace", result)
    print(f"\nmerged 'trace' section into {args.output}")
    if not result["gate"]["met"]:
        print(
            "FAIL: record overhead %.2fx above the %.1fx budget"
            % (result["record_overhead"]["overhead"], RECORD_OVERHEAD_BUDGET),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
