"""Tests for the command-line interface."""

import pytest

from repro.cli import main

FAC = "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac 4"
PLAIN_FAC = "letrec fac = lambda x. if x = 0 then 1 else x * fac (x - 1) in fac 4"


@pytest.fixture
def fac_file(tmp_path):
    path = tmp_path / "fac.lam"
    path.write_text(PLAIN_FAC)
    return str(path)


class TestRun:
    def test_inline_expression(self, capsys):
        assert main(["run", "-e", "6 * 7"]) == 0
        assert capsys.readouterr().out.strip() == "42"

    def test_program_file(self, capsys, fac_file):
        assert main(["run", fac_file]) == 0
        assert capsys.readouterr().out.strip() == "24"

    def test_with_tools(self, capsys):
        assert main(["run", "-e", FAC, "--tools", "profile"]) == 0
        out = capsys.readouterr().out
        assert "24" in out
        assert "'fac': 5" in out

    def test_lazy_language(self, capsys):
        assert main(["run", "-e", "let d = hd [] in 1", "--language", "lazy"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_exceptions_language(self, capsys):
        assert (
            main(
                [
                    "run",
                    "-e",
                    "try raise 41 catch e. e + 1",
                    "--language",
                    "exceptions",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out.strip() == "42"

    def test_lazy_data_language(self, capsys):
        source = (
            "letrec nats = lambda n. n :: nats (n + 1) in hd (tl (nats 5))"
        )
        assert main(["run", "-e", source, "--language", "lazy-data"]) == 0
        assert capsys.readouterr().out.strip() == "6"

    def test_imperative_language(self, capsys):
        assert (
            main(
                [
                    "run",
                    "-e",
                    "x := 2; emit x * 3",
                    "--language",
                    "imperative",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "x = 2" in out
        assert "output: 6" in out

    def test_missing_program(self, capsys):
        assert main(["run"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/prog.lam"]) == 1

    def test_eval_error_reported(self, capsys):
        assert main(["run", "-e", "hd []"]) == 1
        assert "error" in capsys.readouterr().err

    def test_max_steps(self, capsys):
        assert (
            main(
                [
                    "run",
                    "-e",
                    "letrec loop = lambda x. loop x in loop 1",
                    "--max-steps",
                    "1000",
                ]
            )
            == 1
        )


class TestTraceAndProfile:
    def test_profile_auto_annotates(self, capsys, fac_file):
        assert main(["profile", fac_file]) == 0
        out = capsys.readouterr().out
        assert "'fac': 5" in out

    def test_trace_auto_annotates(self, capsys, fac_file):
        assert main(["trace", fac_file]) == 0
        out = capsys.readouterr().out
        assert "[FAC receives (4)]" in out

    def test_functions_filter(self, capsys):
        source = (
            "letrec f = lambda x. x and g = lambda y. f y in g 1"
        )
        assert main(["profile", "-e", source, "--functions", "f"]) == 0
        out = capsys.readouterr().out
        assert "'f': 1" in out
        assert "'g'" not in out


class TestSpecialize:
    def test_residual_printed(self, capsys):
        source = (
            "letrec pow = lambda n. lambda x. "
            "if n = 0 then 1 else x * (pow (n - 1) x) in pow 3 x"
        )
        assert main(["specialize", "-e", source]) == 0
        assert capsys.readouterr().out.strip() == "x * (x * (x * 1))"

    def test_static_binding(self, capsys):
        assert main(["specialize", "-e", "x + y", "--static", "x=40"]) == 0
        assert capsys.readouterr().out.strip() == "40 + y"

    def test_bad_static(self, capsys):
        assert main(["specialize", "-e", "x", "--static", "oops"]) == 1

    def test_stats_flag(self, capsys):
        assert main(["specialize", "-e", "1 + 2", "--stats"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "3"
        assert "folded" in captured.err


class TestEmit:
    def test_python_source(self, capsys):
        assert main(["emit", "-e", FAC, "--tools", "profile"]) == 0
        out = capsys.readouterr().out
        assert "def _program(_rt):" in out
        assert "_pre(" in out

    def test_emitted_source_is_valid_python(self, capsys):
        assert main(["emit", "-e", PLAIN_FAC]) == 0
        compile(capsys.readouterr().out, "<emitted>", "exec")


class TestSession:
    def test_load_and_evaluate(self, capsys, tmp_path):
        from repro.toolbox.session import Session

        session = Session()
        session.define("fac", "lambda x. if x = 0 then 1 else x * fac (x - 1)")
        path = tmp_path / "s.repro"
        session.save(path)

        assert main(["session", str(path), "--eval", "fac 5"]) == 0
        assert capsys.readouterr().out.strip() == "120"

    def test_session_with_tools(self, capsys, tmp_path):
        from repro.toolbox.session import Session

        session = Session()
        session.define("fac", "lambda x. if x = 0 then 1 else x * fac (x - 1)")
        path = tmp_path / "s.repro"
        session.save(path)

        assert main(["session", str(path), "--eval", "fac 3", "--tools", "profile"]) == 0
        out = capsys.readouterr().out
        assert "'fac': 4" in out

    def test_bad_session_file(self, capsys, tmp_path):
        path = tmp_path / "bad.repro"
        path.write_text("garbage")
        assert main(["session", str(path), "--eval", "1"]) == 1

    def test_comma_separated_tools(self, capsys, tmp_path):
        # Regression: every other subcommand splits --tools on commas, but
        # Session.evaluate used to split only on '&', so
        # ``--tools profile,trace`` died with an unknown-tool error.
        from repro.toolbox.session import Session

        session = Session()
        session.define("fac", "lambda x. if x = 0 then 1 else x * fac (x - 1)")
        path = tmp_path / "s.repro"
        session.save(path)

        assert (
            main(
                ["session", str(path), "--eval", "fac 4", "--tools", "profile,trace"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "24" in out
        assert "'fac': 5" in out          # profiler fired
        assert "[FAC receives (4)]" in out  # tracer fired too

    def test_ampersand_tools_still_work(self, capsys, tmp_path):
        from repro.toolbox.session import Session

        session = Session()
        session.define("fac", "lambda x. if x = 0 then 1 else x * fac (x - 1)")
        path = tmp_path / "s.repro"
        session.save(path)

        assert (
            main(
                ["session", str(path), "--eval", "fac 3", "--tools", "profile & trace"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "'fac': 4" in out


class TestFaultPolicy:
    @pytest.fixture
    def flaky_tool(self, monkeypatch):
        # Register a deliberately faulty toolbox monitor so the CLI's
        # fault path can be driven end-to-end.
        from repro.monitoring.faults import FlakyMonitor
        from repro.monitors import ProfilerMonitor
        from repro.toolbox import registry

        monkeypatch.setitem(
            registry.TOOLBOX,
            "flaky",
            lambda namespace=None: FlakyMonitor(
                ProfilerMonitor(namespace=namespace), fail_on=2
            ),
        )

    def test_quarantine_keeps_answer_and_reports_fault(self, capsys, flaky_tool):
        assert (
            main(
                [
                    "run",
                    "-e",
                    FAC,
                    "--tools",
                    "flaky",
                    "--fault-policy",
                    "quarantine",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "24" in out  # the standard answer survived the fault
        assert "--- faults ---" in out
        assert "profile.pre raised InjectedFault" in out
        assert "'fac': 1" in out  # calls counted before the fault

    def test_propagate_still_aborts(self, flaky_tool):
        from repro.monitoring.faults import InjectedFault

        with pytest.raises(InjectedFault):
            main(["run", "-e", FAC, "--tools", "flaky"])

    def test_healthy_run_unchanged_under_quarantine(self, capsys):
        assert (
            main(
                ["run", "-e", FAC, "--tools", "profile", "--fault-policy", "quarantine"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "'fac': 5" in out
        assert "faults" not in out

    def test_rejects_unknown_policy(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "-e", "1", "--fault-policy", "retry"])


class TestTelemetryFlags:
    def test_run_metrics_summary(self, capsys):
        assert main(["run", "-e", FAC, "--tools", "profile", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "--- metrics ---" in out
        assert "steps:" in out
        assert "activations:       profile=5" in out

    def test_run_metrics_without_tools(self, capsys):
        assert main(["run", "-e", "6 * 7", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "42"
        assert "activations:       none" in out

    def test_run_metrics_compiled_engine(self, capsys):
        assert (
            main(["run", "-e", FAC, "--tools", "profile", "--metrics",
                  "--engine", "compiled"])
            == 0
        )
        assert "activations:       profile=5" in capsys.readouterr().out

    def test_trace_out_writes_jsonl(self, capsys, tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        assert (
            main(["run", "-e", FAC, "--tools", "profile",
                  "--trace-out", str(path)])
            == 0
        )
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(e["type"] == "monitor-pre" for e in events)
        assert any(e["type"] == "step" for e in events)

    def test_trace_out_replays_to_profiler_counts(self, capsys, tmp_path):
        from repro.observability import read_events, replay

        path = tmp_path / "events.jsonl"
        assert (
            main(["profile", "-e", PLAIN_FAC, "--trace-out", str(path)]) == 0
        )
        summary = replay(read_events(path))
        assert summary.pre_counts["profile"] == {"fac": 5}

    def test_profile_subcommand_metrics(self, capsys):
        assert main(["profile", "-e", PLAIN_FAC, "--metrics"]) == 0
        assert "pre calls:         profile=5" in capsys.readouterr().out

    def test_trace_subcommand_metrics(self, capsys):
        assert main(["trace", "-e", PLAIN_FAC, "--metrics"]) == 0
        assert "--- metrics ---" in capsys.readouterr().out

    def test_session_metrics(self, capsys, tmp_path):
        from repro.toolbox.session import Session

        session = Session()
        session.define("fac", "lambda x. if x = 0 then 1 else x * fac (x - 1)")
        path = tmp_path / "s.repro"
        session.save(path)
        assert (
            main(["session", str(path), "--eval", "fac 5", "--tools",
                  "profile", "--metrics"])
            == 0
        )
        out = capsys.readouterr().out
        assert "120" in out and "--- metrics ---" in out

    def test_debug_metrics(self, capsys):
        assert (
            main(["debug", "-e", FAC, "--command", "continue", "--metrics"])
            == 0
        )
        out = capsys.readouterr().out
        assert "=> 24" in out
        assert "activations:       debug=5" in out


class TestDebugFaultPolicy:
    """Regression: ``debug`` lacked ``--fault-policy`` entirely, so a
    buggy debugger monitor always aborted the program being debugged."""

    @pytest.fixture
    def flaky_debugger(self, monkeypatch):
        from repro.monitoring.faults import FlakyMonitor
        from repro.monitors import interactive
        from repro.monitors.debugger import DebuggerMonitor

        def make(*args, **kwargs):
            return FlakyMonitor(DebuggerMonitor(*args, **kwargs), fail_on=1)

        monkeypatch.setattr(interactive, "DebuggerMonitor", make)

    def test_quarantine_keeps_answer_and_reports_fault(
        self, capsys, flaky_debugger
    ):
        assert (
            main(["debug", "-e", FAC, "--command", "continue",
                  "--fault-policy", "quarantine"])
            == 0
        )
        captured = capsys.readouterr()
        assert "=> 24" in captured.out
        assert "monitor fault: debug.pre raised InjectedFault" in captured.err

    def test_propagate_still_aborts(self, flaky_debugger):
        from repro.monitoring.faults import InjectedFault

        with pytest.raises(InjectedFault):
            main(["debug", "-e", FAC, "--command", "continue"])

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["debug", "-e", "1", "--command", "quit",
                  "--fault-policy", "retry"])


class TestDebug:
    def test_max_steps_enforced(self, capsys):
        # Regression: cmd_debug used to drop --max-steps on the floor, so
        # a divergent program under the debugger span forever.
        assert (
            main(
                [
                    "debug",
                    "-e",
                    "letrec loop = lambda x. loop x in loop 1",
                    "--max-steps",
                    "500",
                    "--command",
                    "quit",
                ]
            )
            == 1
        )
        assert "step limit of 500" in capsys.readouterr().err

    def test_scripted_session(self, capsys):
        assert (
            main(
                [
                    "debug",
                    "-e",
                    FAC,
                    "--break",
                    "fac",
                    "--command",
                    "print x",
                    "--command",
                    "quit",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stopped at fac" in out
        assert "x = 4" in out
        assert "=> 24" in out


class TestCheckpointIntervalValidation:
    """--checkpoint-interval is rejected at flag level, not as a traceback."""

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_run_rejects_non_positive(self, capsys, value):
        assert main(["run", "-e", "1 + 1", "--checkpoint-interval", value]) == 1
        err = capsys.readouterr().err
        assert "error: --checkpoint-interval must be a positive integer" in err

    def test_replay_rejects_non_positive(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text("", encoding="utf-8")
        assert (
            main(["replay", str(trace), "--checkpoint-interval", "0"]) == 1
        )
        err = capsys.readouterr().err
        assert "--checkpoint-interval must be a positive integer" in err

    def test_valid_interval_still_accepted(self, capsys):
        assert main(["run", "-e", "1 + 1", "--checkpoint-interval", "7"]) == 0
        assert capsys.readouterr().out.strip() == "2"


class TestOptimizeFlag:
    def test_flow_run_matches_plain(self, capsys):
        assert main(["run", "-e", FAC, "--tools", "count", "--engine", "codegen"]) == 0
        plain = capsys.readouterr().out
        assert (
            main(
                [
                    "run",
                    "-e",
                    FAC,
                    "--tools",
                    "count",
                    "--engine",
                    "codegen",
                    "--optimize",
                    "flow",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == plain

    def test_lint_warn_includes_flow_pass(self, capsys):
        assert (
            main(
                [
                    "run",
                    "-e",
                    "if false then {p}: 1 else 2",
                    "--tools",
                    "count",
                    "--optimize",
                    "flow",
                    "--lint",
                    "warn",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "REP501" in captured.err
