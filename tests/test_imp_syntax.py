"""Tests for the L_imp surface syntax."""

import pytest

from repro.errors import ParseError
from repro.languages.imp_syntax import parse_imp, pretty_imp
from repro.languages.imperative import (
    AnnotatedCmd,
    Assign,
    Emit,
    IfC,
    Local,
    Seq,
    Skip,
    While,
    imperative,
)
from repro.monitoring.derive import run_monitored
from repro.monitors import LabelCounterMonitor
from repro.syntax.annotations import Label


class TestParsing:
    def test_skip(self):
        assert parse_imp("skip") == Skip()

    def test_assignment(self):
        command = parse_imp("x := 1 + 2")
        assert isinstance(command, Assign)
        assert command.name == "x"

    def test_emit(self):
        assert isinstance(parse_imp("emit 42"), Emit)

    def test_sequence(self):
        command = parse_imp("x := 1; y := 2; z := 3")
        assert isinstance(command, Seq)

    def test_trailing_semicolon(self):
        assert isinstance(parse_imp("x := 1;"), Assign)

    def test_if(self):
        command = parse_imp("if x > 0 then y := 1 else y := 2")
        assert isinstance(command, IfC)

    def test_while_with_block(self):
        command = parse_imp(
            "while i > 0 do begin emit i; i := i - 1 end"
        )
        assert isinstance(command, While)
        assert isinstance(command.body, Seq)

    def test_local(self):
        command = parse_imp("local t = 5 in emit t")
        assert isinstance(command, Local)

    def test_annotated_command(self):
        command = parse_imp("{p}: x := 1")
        assert isinstance(command, AnnotatedCmd)
        assert command.annotation == Label("p")

    def test_nested_blocks(self):
        command = parse_imp(
            """
            i := 0;
            while i < 3 do begin
                if i = 1 then emit i else skip;
                i := i + 1
            end
            """
        )
        bindings, output = imperative.run_to_store(command)
        assert bindings["i"] == 3
        assert output == (1,)

    def test_lambda_rejected_in_expressions(self):
        with pytest.raises(ParseError) as exc:
            parse_imp("x := (lambda y. y) 1")
        assert "L_imp" in str(exc.value)

    def test_let_rejected(self):
        with pytest.raises(ParseError):
            parse_imp("x := let a = 1 in a")

    def test_missing_assign_operator(self):
        with pytest.raises(ParseError):
            parse_imp("x = 1")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_imp("skip skip")

    def test_keywords_contextual(self):
        # `end` etc. are ordinary identifiers to the expression grammar.
        command = parse_imp("done := 1; emit done")
        bindings, output = imperative.run_to_store(command)
        assert output == (1,)


class TestExecution:
    def test_sum_of_squares(self):
        program = parse_imp(
            """
            i := 1;
            total := 0;
            while i <= 5 do begin
                total := total + i * i;
                i := i + 1
            end
            """
        )
        bindings, _ = imperative.run_to_store(program)
        assert bindings["total"] == 55

    def test_monitored_surface_program(self):
        program = parse_imp(
            """
            i := 3;
            while i > 0 do begin
                {tick}: i := i - 1
            end
            """
        )
        result = run_monitored(imperative, program, LabelCounterMonitor())
        assert result.report() == {"tick": 3}


class TestPretty:
    ROUNDTRIP = [
        "skip",
        "x := 1",
        "emit x + 1",
        "x := 1;\ny := 2",
        "{p}: x := 1",
    ]

    @pytest.mark.parametrize("source", ROUNDTRIP)
    def test_roundtrip_simple(self, source):
        command = parse_imp(source)
        assert parse_imp(pretty_imp(command)) == command

    def test_roundtrip_structured(self):
        source = """
        i := 10;
        total := 0;
        while i > 0 do begin
            {acc}: total := total + i;
            local t = total in emit t;
            i := i - 1
        end;
        if total > 50 then emit 1 else emit 0
        """
        command = parse_imp(source)
        assert parse_imp(pretty_imp(command)) == command

    def test_rendering_shape(self):
        text = pretty_imp(parse_imp("while a do begin skip; skip end"))
        assert text.startswith("while a do")
        assert "begin" in text and "end" in text
