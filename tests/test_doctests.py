"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.partial_eval.online
import repro.prelude
import repro.syntax.annotations
import repro.syntax.parser
import repro.toolbox.session

MODULES = [
    repro.partial_eval.online,
    repro.prelude,
    repro.syntax.annotations,
    repro.syntax.parser,
    repro.toolbox.session,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
