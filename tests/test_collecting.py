"""Figure 9: the collecting monitor."""

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import CollectingMonitor
from repro.semantics.values import from_python_list
from repro.syntax.parser import parse


class TestPaperExample:
    def test_section8_result(self, paper_collecting_program):
        """The paper: [test -> {True, False}, n -> {1, 2, 3}]."""
        result = run_monitored(strict, paper_collecting_program, CollectingMonitor())
        assert result.answer == 6
        report = result.report()
        assert set(report["test"]) == {True, False}
        assert set(report["n"]) == {1, 2, 3}

    def test_insertion_order(self, paper_collecting_program):
        result = run_monitored(strict, paper_collecting_program, CollectingMonitor())
        # Figure 2 evaluates an application's argument before its operator,
        # so the recursive call runs before {n}: n is observed: the
        # innermost n = 1 is collected first.
        assert result.report()["n"] == (1, 2, 3)


class TestDeduplication:
    def test_repeated_values_collapse(self):
        program = parse(
            "letrec f = lambda n. if n = 0 then 0 else {v}: 7 + f (n - 1) in f 4"
        )
        result = run_monitored(strict, program, CollectingMonitor())
        assert result.report()["v"] == (7,)

    def test_bool_and_int_distinct(self):
        program = parse("if {v}: true then {v}: 1 else 2")
        result = run_monitored(strict, program, CollectingMonitor())
        assert result.report()["v"] == (True, 1)

    def test_list_values_structural(self):
        program = parse("({v}: [1, 2]) = ({v}: [1, 2])")
        result = run_monitored(strict, program, CollectingMonitor())
        assert result.report()["v"] == (from_python_list([1, 2]),)

    def test_function_values_by_identity(self):
        # Two syntactically identical lambdas are different closures.
        program = parse("(lambda g. 0) ({v}: (lambda x. x)) + (lambda g. 0) ({v}: (lambda x. x))")
        result = run_monitored(strict, program, CollectingMonitor())
        assert len(result.report()["v"]) == 2


class TestHelpers:
    def test_values_of(self):
        monitor = CollectingMonitor()
        result = run_monitored(strict, parse("{x}: 1"), monitor)
        assert monitor.values_of(result.state_of(monitor), "x") == (1,)
        assert monitor.values_of(result.state_of(monitor), "missing") == ()

    def test_state_purity(self):
        monitor = CollectingMonitor()
        s0 = monitor.initial_state()
        from repro.syntax.annotations import Label

        s1 = monitor.post(Label("x"), None, None, 1, s0)
        assert s0 == {}
        assert monitor.values_of(s1, "x") == (1,)
