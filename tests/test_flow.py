"""Units for the claim-flow & reachability analysis (``REP5xx``).

Covers the abstract interpreter (``repro.analysis.cfg``), the flow facts
(``repro.analysis.flow``), the diagnostics they surface, the codegen and
record-mode consumers, the ``CompilationCache`` memo — plus the L_imp
coverage for the scope/stack analyzers the flow work rides along with.
"""

import pytest

from repro.analysis import analyze, analyze_flow, flow_diagnostics
from repro.analysis.cfg import reachable_nodes
from repro.analysis.scope import analyze_scope
from repro.analysis.stack import analyze_stack
from repro.languages import imperative, strict
from repro.languages.imp_syntax import parse_imp
from repro.monitoring.derive import run_monitored
from repro.monitors import LabelCounterMonitor, ProfilerMonitor, TracerMonitor
from repro.partial_eval.codegen import generate_program
from repro.partial_eval.imp_codegen import generate_imp_program
from repro.runtime import CompilationCache, RunConfig
from repro.runtime.cache import cache_key
from repro.syntax.parser import parse

ENGINES = ["reference", "compiled", "codegen"]

#: {p} guarded by a constantly-false branch: statically dead.
DEAD_BRANCH = "let x = if false then {p}: 1 else 2 in {q}: (x + 1)"

#: A letrec *wrapper* annotation (on the binding, not inside the lambda
#: body): no engine ever fires it — extend_recursive strips it.
LETREC_WRAPPER = "letrec f = {w}: lambda x. {p}: x in f 3"


def _site_ids(flow):
    return {s.site_id: s for s in flow.sites}


class TestReachability:
    def test_straight_line_is_fully_reachable(self):
        program = parse("{p}: (1 + 2)")
        flow = analyze_flow(program, [LabelCounterMonitor()])
        assert flow.erasable_sites == frozenset()
        assert set(flow.reachable_sites) == {0}

    def test_constant_false_branch_is_dead(self):
        flow = analyze_flow(parse(DEAD_BRANCH), [LabelCounterMonitor()])
        sites = _site_ids(flow)
        assert not sites[0].reachable  # {p} in the dead branch
        assert sites[1].reachable  # {q}
        assert flow.erasable_sites == frozenset({0})

    def test_unknown_condition_keeps_both_branches(self):
        program = parse(
            "let f = lambda b. if b then {p}: 1 else {q}: 2 in f true"
        )
        flow = analyze_flow(program, [LabelCounterMonitor()])
        assert flow.erasable_sites == frozenset()

    def test_letrec_wrapper_is_dead_but_body_is_live(self):
        flow = analyze_flow(parse(LETREC_WRAPPER), [LabelCounterMonitor()])
        sites = _site_ids(flow)
        wrappers = [s for s in flow.sites if s.letrec_wrapper]
        assert len(wrappers) == 1 and not wrappers[0].reachable
        live = [s for s in sites.values() if not s.letrec_wrapper]
        assert all(s.reachable for s in live)

    def test_imp_constant_false_loop_body_is_dead(self):
        program = parse_imp(
            "k := 0; while false do begin {p}: k := 1 end; emit k"
        )
        flow = analyze_flow(program, [LabelCounterMonitor()])
        assert flow.erasable_sites == frozenset({0})

    def test_imp_counted_loop_body_is_live(self):
        program = parse_imp(
            "k := 0; while k < 3 do begin {p}: k := k + 1 end; emit k"
        )
        flow = analyze_flow(program, [LabelCounterMonitor()])
        assert flow.erasable_sites == frozenset()

    def test_reachable_nodes_accepts_commands(self):
        program = parse_imp("x := 1; if false then y := 2 else y := 3")
        reached = reachable_nodes(program)
        assert reached  # non-trivial: the pass ran rather than bailing


class TestFlowFacts:
    def test_alphabets_and_claim_flow(self):
        program = parse(
            "letrec f = lambda n. {f(n)}: if n < 1 then {p}: 0 "
            "else f (n - 1) in f 2"
        )
        stack = [LabelCounterMonitor(), TracerMonitor()]
        flow = analyze_flow(program, stack)
        alphabets = flow.alphabets()
        assert alphabets["trace"] == ("{f(n)}",)
        assert alphabets["count"] == ("{p}",)
        assert flow.dead_monitors == ()
        claim = flow.claim_flow()
        assert set(claim.values()) == {("trace",), ("count",)}

    def test_dead_monitor_has_empty_alphabet(self):
        # trace only recognizes the fn-header site, which is unreachable.
        program = parse("if false then {f(f)}: 1 else {p}: 2")
        stack = [LabelCounterMonitor(), TracerMonitor()]
        flow = analyze_flow(program, stack)
        assert flow.alphabets()["trace"] == ()
        assert flow.dead_monitors == ("trace",)

    def test_stats_shape(self):
        flow = analyze_flow(parse(DEAD_BRANCH), [LabelCounterMonitor()])
        stats = flow.stats()
        assert stats == {
            "sites": 2,
            "reachable_sites": 1,
            "erased_sites": 1,
            "dead_monitors": 0,
        }


class TestFlowDiagnostics:
    def test_rep501_and_rep502(self):
        program = parse("if false then {f(f)}: 1 else {p}: 2")
        stack = [LabelCounterMonitor(), TracerMonitor()]
        codes = [d.code for d in flow_diagnostics(analyze_flow(program, stack))]
        assert codes == ["REP501", "REP502"]

    def test_letrec_wrapper_gets_the_wrapper_hint(self):
        flow = analyze_flow(parse(LETREC_WRAPPER), [LabelCounterMonitor()])
        rep501 = [
            d for d in flow_diagnostics(flow) if d.code == "REP501"
        ]
        assert len(rep501) == 1
        assert "letrec" in rep501[0].message

    def test_rep503_is_informational(self):
        program = parse("let g = lambda x. x in {p}: ({g(g)}: (g 1))")
        stack = [LabelCounterMonitor(), TracerMonitor()]
        report = analyze(program, stack, flow=True)
        assert report.codes() == ("REP503",)
        assert report.ok()  # info never gates
        assert len(report.infos) == 1 and not report.warnings
        assert "1 info(s)" in report.summary()
        assert report.to_json()["infos"] == 1

    def test_analyze_without_flow_emits_no_rep5xx(self):
        report = analyze(parse(DEAD_BRANCH), [LabelCounterMonitor()])
        assert not any(c.startswith("REP5") for c in report.codes())

    def test_lint_error_not_gated_by_flow_warnings(self):
        # REP501/REP502 are warnings: lint="error" still admits the run.
        result = run_monitored(
            strict,
            parse(DEAD_BRANCH),
            LabelCounterMonitor(),
            config=RunConfig(lint="error", optimize="flow", engine="codegen"),
        )
        assert result.answer == 3


class TestImpScopeAndStack:
    """Satellite coverage: the scope/stack analyzers on L_imp programs."""

    def test_analyze_scope_is_empty_for_commands(self):
        # Scope analysis is an Expr pass; commands get no findings (the
        # imperative store is dynamically scoped), not a crash.
        assert analyze_scope(parse_imp("x := 1; emit x"), frozenset()) == []

    def test_rep204_on_commands(self):
        program = parse_imp("x := 1; {p}: x := 2")
        stack = [ProfilerMonitor(), LabelCounterMonitor()]
        codes = [d.code for d in analyze_stack(program, stack)]
        assert codes == ["REP204"]

    def test_rep202_and_rep203_on_commands(self):
        program = parse_imp("{unknown: q}: skip; {f(f)}: skip")
        stack = [LabelCounterMonitor()]
        codes = sorted(d.code for d in analyze_stack(program, stack))
        assert codes == ["REP202", "REP203"]

    def test_rep205_duplicate_keys_on_commands(self):
        program = parse_imp("{p}: skip")
        stack = [LabelCounterMonitor(), LabelCounterMonitor()]
        codes = [d.code for d in analyze_stack(program, stack)]
        # duplicate keys, and {p} claimed by both copies
        assert codes == ["REP205", "REP204"]

    def test_full_analyze_on_commands_with_flow(self):
        program = parse_imp(
            "x := 0; if false then begin {p}: x := 1 end "
            "else begin skip end; emit x"
        )
        report = analyze(
            program, [ProfilerMonitor()], language=imperative, flow=True
        )
        assert report.codes() == ("REP501", "REP502")


class TestCodegenErasure:
    def test_erased_site_leaves_dispatch_table(self):
        program = parse(DEAD_BRANCH)
        stack = [LabelCounterMonitor()]
        plain = generate_program(program, stack, check_disjointness=False)
        flow = analyze_flow(program, stack)
        erased = generate_program(
            program, stack, check_disjointness=False, flow=flow
        )
        assert len(erased._sites) == len(plain._sites) - 1
        assert {s.annotation.render() for s in erased._sites} == {"q"}

    def test_erasure_preserves_answer_and_states(self):
        program = parse(DEAD_BRANCH)
        stack = [LabelCounterMonitor()]
        flow = analyze_flow(program, stack)
        erased = generate_program(
            program, stack, check_disjointness=False, flow=flow
        )
        result = run_monitored(strict, program, [LabelCounterMonitor()])
        answer, states = erased.run()
        assert answer == result.answer
        assert states.get("count") == result.state_of("count")

    def test_dead_monitor_dropped_but_still_reported(self):
        program = parse("if false then {f(f)}: 1 else {p}: 2")
        stack = [LabelCounterMonitor(), TracerMonitor()]
        flow = analyze_flow(program, stack)
        erased = generate_program(
            program, stack, check_disjointness=False, flow=flow
        )
        assert all(s.monitor.key != "trace" for s in erased._sites)
        # The state vector keeps the full stack: reports stay complete.
        _, states = erased.run()
        assert states.get("trace") is not None

    def test_imp_codegen_erasure_parity(self):
        program = parse_imp(
            "k := 0; while false do begin {p}: k := 9 end; "
            "{q}: begin k := k + 1 end; emit k"
        )
        stack = [LabelCounterMonitor()]
        flow = analyze_flow(program, stack)
        plain = generate_imp_program(program, stack)
        erased = generate_imp_program(program, stack, flow=flow)
        assert plain.run()[0] == erased.run()[0]
        assert plain.run()[1].get("count") == erased.run()[1].get("count")

    @pytest.mark.parametrize("engine", ENGINES)
    def test_letrec_wrapper_never_fires_in_any_engine(self, engine):
        # The static claim REP501 makes about wrapper annotations,
        # checked dynamically: no engine ever counts {w}.
        result = run_monitored(
            strict,
            parse(LETREC_WRAPPER),
            LabelCounterMonitor(),
            config=RunConfig(engine=engine),
        )
        counts = result.state_of("count")
        assert counts.get("w", 0) == 0
        assert counts.get("p") == 1


class TestRunConfigAndCache:
    def test_optimize_validated(self):
        with pytest.raises(ValueError, match="optimize"):
            RunConfig(optimize="aggressive").validate()
        assert RunConfig(optimize="flow").validate().optimize == "flow"

    def test_optimize_crosses_the_scalar_wire(self):
        cfg = RunConfig(optimize="flow")
        assert RunConfig.from_scalars(cfg.scalars()).optimize == "flow"

    def test_cache_key_distinguishes_optimize(self):
        program = parse("{p}: 1")
        stack = [LabelCounterMonitor()]
        base = cache_key("strict", program, stack, engine="codegen")
        flow = cache_key("strict", program, stack, engine="codegen", optimize="flow")
        assert base != flow

    def test_flow_verdict_memoized(self):
        cache = CompilationCache(8)
        program = parse(DEAD_BRANCH)
        stack = [LabelCounterMonitor()]
        first = cache.flow_verdict(stack, program)
        # A structurally equal re-parse hits the fingerprint-keyed memo.
        second = cache.flow_verdict(stack, parse(DEAD_BRANCH))
        assert first is second
        stats = cache.flow_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        cache.clear()
        assert cache.flow_stats()["size"] == 0

    def test_get_or_compile_with_flow_erases(self):
        cache = CompilationCache(8)
        program = parse(DEAD_BRANCH)
        stack = [LabelCounterMonitor()]
        plain = cache.get_or_compile(strict, program, stack, engine="codegen")
        erased = cache.get_or_compile(
            strict, program, stack, engine="codegen", optimize="flow"
        )
        assert len(erased._sites) == len(plain._sites) - 1
        # Distinct cache entries: asking again returns each unchanged.
        assert (
            cache.get_or_compile(strict, program, stack, engine="codegen")
            is plain
        )

    def test_run_monitored_flow_matches_none(self):
        program = parse(DEAD_BRANCH)
        results = {}
        for optimize in ("none", "flow"):
            results[optimize] = run_monitored(
                strict,
                program,
                LabelCounterMonitor(),
                config=RunConfig(engine="codegen", optimize=optimize),
            )
        assert results["none"].answer == results["flow"].answer
        assert results["none"].reports() == results["flow"].reports()


class TestRecordFlowFilter:
    def test_static_site_filter_folds_identically(self, tmp_path):
        from repro.tracing import analyze_trace, record

        program = parse(DEAD_BRANCH)
        paths = {}
        for optimize in ("none", "flow"):
            path = tmp_path / f"trace-{optimize}.jsonl"
            outcome = record(
                program=program,
                language=strict,
                out=str(path),
                monitors=[LabelCounterMonitor()],
                config=RunConfig(optimize=optimize),
            )
            paths[optimize] = (path, outcome)
        _, unfiltered = paths["none"]
        _, filtered = paths["flow"]
        assert filtered.enabled_sites == unfiltered.enabled_sites - 1
        assert filtered.answer == unfiltered.answer
        folds = {
            key: analyze_trace(str(path), [LabelCounterMonitor()])
            for key, (path, _) in paths.items()
        }
        assert folds["none"].reports() == folds["flow"].reports()
