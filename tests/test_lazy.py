"""Tests for the lazy (call-by-need) language module."""

import pytest

from repro.errors import EvalError, StepLimitExceeded
from repro.languages import lazy, strict
from repro.monitoring.derive import run_monitored
from repro.monitors import LabelCounterMonitor
from repro.syntax.parser import parse


def run(source, **kwargs):
    return lazy.evaluate(parse(source), **kwargs)


class TestBasics:
    def test_corpus(self, corpus_case):
        program, expected = corpus_case
        assert lazy.evaluate(program) == expected

    def test_unused_divergence_ignored(self):
        source = (
            "letrec loop = lambda x. loop x in "
            "let dead = loop 1 in 42"
        )
        assert run(source) == 42

    def test_unused_error_ignored(self):
        assert run("let dead = hd [] in 1") == 1

    def test_strict_diverges_on_same_program(self):
        source = (
            "letrec loop = lambda x. loop x in "
            "let dead = loop 1 in 42"
        )
        with pytest.raises(StepLimitExceeded):
            strict.evaluate(parse(source), max_steps=100_000)

    def test_unused_argument_ignored(self):
        assert run("(lambda x. 7) (hd [])") == 7

    def test_demanded_error_still_raises(self):
        with pytest.raises(EvalError):
            run("(lambda x. x) (hd [])")


class TestSharing:
    def test_thunk_forced_once(self):
        program = parse(
            "let x = {costly}: (1 + 2) in x + x"
        )
        result = run_monitored(lazy, program, LabelCounterMonitor())
        assert result.answer == 6
        assert result.report() == {"costly": 1}

    def test_sharing_through_variables(self):
        program = parse(
            "let x = {costly}: (2 * 2) in "
            "let y = x in "
            "let z = y in z + y + x"
        )
        result = run_monitored(lazy, program, LabelCounterMonitor())
        assert result.answer == 12
        assert result.report() == {"costly": 1}

    def test_never_demanded_never_monitored(self):
        program = parse("let dead = {dead}: (1 + 1) in 5")
        result = run_monitored(lazy, program, LabelCounterMonitor())
        assert result.report() == {}

    def test_strict_monitors_eagerly(self):
        program = parse("let dead = {dead}: (1 + 1) in 5")
        result = run_monitored(strict, program, LabelCounterMonitor())
        assert result.report() == {"dead": 1}


class TestDemandOrder:
    def test_argument_forced_at_use_not_call(self):
        events = []
        from repro.monitoring.spec import FunctionSpec
        from repro.syntax.annotations import Label

        spy = FunctionSpec(
            key="spy",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            pre=lambda ann, term, ctx, st: (events.append(ann.name), st)[1],
        )
        program = parse(
            "(lambda x. {body}: 1 + x) ({arg}: 2)"
        )
        run_monitored(lazy, program, spy)
        # Under call-by-need the body is entered before the argument is
        # forced; under call-by-value it would be the other way around.
        assert events == ["body", "arg"]

    def test_deep_lazy_recursion(self):
        source = "letrec f = lambda n. if n = 0 then 0 else f (n - 1) in f 50000"
        assert run(source) == 0

    def test_if_forces_condition_only(self):
        assert run("if true then 1 else hd []") == 1
