"""Tests for generic AST transformations."""

from hypothesis import given, settings

from repro.syntax.annotations import Label
from repro.syntax.ast import (
    Annotated,
    App,
    Const,
    Lam,
    Let,
    Letrec,
    Var,
    annotations_in,
    node_count,
    strip_annotations,
)
from repro.syntax.parser import parse
from repro.syntax.transform import (
    alpha_equivalent,
    bound_variables,
    free_variables,
    fresh_name,
    map_children,
    substitute,
    transform_bottom_up,
)

from tests.generators import closed_program


class TestFreeVariables:
    def test_var_is_free(self):
        assert free_variables(Var("x")) == {"x"}

    def test_lambda_binds(self):
        assert free_variables(parse("lambda x. x + y")) == {"+", "y"}

    def test_let_binds_body_only(self):
        expr = parse("let x = x in x")
        assert "x" in free_variables(expr)  # the bound side's x is free

    def test_letrec_binds_in_bindings_and_body(self):
        expr = parse("letrec f = lambda x. f x in f")
        assert "f" not in free_variables(expr)

    def test_annotations_transparent(self):
        assert free_variables(parse("{p}: x")) == {"x"}


class TestBoundVariables:
    def test_collects_all_binders(self):
        expr = parse("let a = 1 in lambda b. letrec c = lambda d. d in c")
        assert bound_variables(expr) == {"a", "b", "c", "d"}


class TestFreshName:
    def test_no_clash(self):
        assert fresh_name("x", set()) == "x"

    def test_clash_appends_suffix(self):
        assert fresh_name("x", {"x"}) == "x_1"
        assert fresh_name("x", {"x", "x_1"}) == "x_2"


class TestSubstitution:
    def test_simple(self):
        assert substitute(Var("x"), {"x": Const(1)}) == Const(1)

    def test_untouched(self):
        assert substitute(Var("y"), {"x": Const(1)}) == Var("y")

    def test_shadowed_not_substituted(self):
        expr = Lam("x", Var("x"))
        assert substitute(expr, {"x": Const(1)}) == expr

    def test_capture_avoidance(self):
        # (lambda y. x) with x := y must not capture.
        expr = Lam("y", Var("x"))
        result = substitute(expr, {"x": Var("y")})
        assert isinstance(result, Lam)
        assert result.param != "y"
        assert result.body == Var("y")

    def test_letrec_shadowing(self):
        expr = parse("letrec f = lambda x. f x in f 1")
        result = substitute(expr, {"f": Const(1)})
        assert result == expr  # f is bound throughout

    def test_letrec_capture_avoidance(self):
        expr = parse("letrec f = lambda x. g x in f 1")
        result = substitute(expr, {"g": Var("f")})
        # The letrec's own f must be renamed so the substituted f stays free.
        assert isinstance(result, Letrec)
        assert result.bindings[0][0] != "f"

    def test_annotation_preserved(self):
        expr = Annotated(Label("p"), Var("x"))
        assert substitute(expr, {"x": Const(2)}) == Annotated(Label("p"), Const(2))

    def test_simultaneous(self):
        expr = parse("x + y")
        result = substitute(expr, {"x": Var("y"), "y": Var("x")})
        assert result == parse("y + x")

    def test_evaluation_agrees(self):
        from repro.languages import strict

        expr = parse("x * x + y")
        closed = substitute(expr, {"x": Const(3), "y": Const(4)})
        assert strict.evaluate(closed) == 13


class TestAlphaEquivalence:
    def test_identical(self):
        assert alpha_equivalent(parse("lambda x. x"), parse("lambda x. x"))

    def test_renamed(self):
        assert alpha_equivalent(parse("lambda x. x"), parse("lambda y. y"))

    def test_free_vars_must_match(self):
        assert not alpha_equivalent(Var("x"), Var("y"))

    def test_structure_must_match(self):
        assert not alpha_equivalent(parse("lambda x. x"), parse("lambda x. x x"))

    def test_letrec_renaming(self):
        a = parse("letrec f = lambda x. f x in f 1")
        b = parse("letrec g = lambda y. g y in g 1")
        assert alpha_equivalent(a, b)

    def test_annotations_significant(self):
        assert not alpha_equivalent(parse("{p}: x"), parse("{q}: x"))

    def test_const_type_significant(self):
        assert not alpha_equivalent(Const(1), Const(True))


class TestStripAnnotations:
    def test_removes_all(self):
        expr = parse("{a}: ({b}: x + {c}: y)")
        assert annotations_in(strip_annotations(expr)) == ()

    def test_preserves_structure(self):
        expr = parse("letrec f = lambda x. {f}: (x + 1) in f 1")
        stripped = strip_annotations(expr)
        assert stripped == parse("letrec f = lambda x. x + 1 in f 1")


class TestTraversal:
    def test_map_children_identity_preserves_object(self):
        expr = parse("f (x + 1)")
        assert map_children(expr, lambda child: child) is expr

    def test_transform_bottom_up(self):
        expr = parse("1 + 2")

        def bump(node):
            if isinstance(node, Const) and node.value == 1:
                return Const(10)
            return node

        assert transform_bottom_up(expr, bump) == parse("10 + 2")

    def test_node_count(self):
        assert node_count(Const(1)) == 1
        assert node_count(parse("1 + 2")) == 5  # App(App(Var+, 1), 2)


@settings(max_examples=60, deadline=None)
@given(closed_program())
def test_strip_annotations_idempotent(program):
    once = strip_annotations(program)
    assert strip_annotations(once) == once
    assert annotations_in(once) == ()


@settings(max_examples=60, deadline=None)
@given(closed_program())
def test_alpha_equivalence_reflexive(program):
    assert alpha_equivalent(program, program)
