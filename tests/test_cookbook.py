"""The MONITOR_COOKBOOK's example monitor, verified verbatim."""

from repro import assert_valid_monitor, parse, run_monitored, strict
from repro.monitoring.spec import MonitorSpec
from repro.monitors.common import recognize_with_namespace
from repro.syntax.annotations import Label


class MaxDepthMonitor(MonitorSpec):
    """Track the deepest nesting of annotated activations."""

    def __init__(self, *, key="maxdepth", namespace=None):
        self.key = key
        self.namespace = namespace

    def recognize(self, annotation):
        return recognize_with_namespace(annotation, self.namespace, Label)

    def initial_state(self):
        return (0, 0)  # (current depth, max depth)

    def pre(self, annotation, term, ctx, state):
        depth, peak = state
        return (depth + 1, max(peak, depth + 1))

    def post(self, annotation, term, ctx, result, state):
        depth, peak = state
        return (depth - 1, peak)

    def report(self, state):
        return state[1]


def test_cookbook_example():
    prog = parse(
        "letrec f = lambda n. {f}: if n = 0 then 0 else f (n - 1) in f 5"
    )
    assert run_monitored(strict, prog, MaxDepthMonitor()).report() == 6


def test_cookbook_example_validates():
    assert_valid_monitor(MaxDepthMonitor())


def test_cookbook_example_flat_recursion():
    # Tail-position annotation still nests in the continuation sense: the
    # annotated body of each activation contains the next.
    prog = parse("{a}: 1 + {b}: 2")
    monitor = MaxDepthMonitor()
    result = run_monitored(strict, prog, monitor)
    assert result.report() == 1  # siblings, never nested


def test_cookbook_specialization_parity():
    from repro.partial_eval.codegen import generate_program

    prog = parse(
        "letrec f = lambda n. {f}: if n = 0 then 0 else f (n - 1) in f 4"
    )
    interp = run_monitored(strict, prog, MaxDepthMonitor())
    generated = generate_program(prog, MaxDepthMonitor())
    assert generated.report("maxdepth") == interp.report() == 5
