"""Tests for residual Python code generation."""

import pytest

from repro.errors import EvalError, NotAFunctionError
from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import (
    CollectingMonitor,
    LabelCounterMonitor,
    ProfilerMonitor,
    StepperMonitor,
    TracerMonitor,
    UnsortedListDemon,
)
from repro.partial_eval.codegen import generate_program
from repro.syntax.parser import parse


class TestStandardResiduals:
    def test_corpus_parity(self, corpus_case):
        program, expected = corpus_case
        generated = generate_program(program)
        assert generated.evaluate() == expected

    def test_source_is_python(self, paper_tracer_program):
        generated = generate_program(paper_tracer_program, TracerMonitor())
        compile(generated.source, "<check>", "exec")  # must be valid Python

    def test_errors_preserved(self):
        with pytest.raises(EvalError):
            generate_program(parse("hd []")).evaluate()

    def test_apply_non_function(self):
        with pytest.raises(NotAFunctionError):
            generate_program(parse("1 2")).evaluate()

    def test_non_boolean_condition(self):
        with pytest.raises(EvalError):
            generate_program(parse("if 1 then 2 else 3")).evaluate()

    def test_shadowed_primitive(self):
        program = parse("let hd = lambda x. 99 in hd [1]")
        assert generate_program(program).evaluate() == 99

    def test_identifier_mangling(self):
        program = parse("let x' = 1 in let ok? = true in if ok? then x' else 0")
        assert generate_program(program).evaluate() == 1

    def test_reruns_are_independent(self):
        program = parse("letrec f = lambda x. {f}: x in f 1")
        generated = generate_program(program, ProfilerMonitor())
        assert generated.report("profile") == {"f": 1}
        assert generated.report("profile") == {"f": 1}  # state reset per run


class TestMonitorParity:
    """The residual instrumented program must agree with the interpreter
    on answers AND final monitor states, for every toolbox monitor."""

    MONITORS = [
        ProfilerMonitor(),
        TracerMonitor(),
        LabelCounterMonitor(),
        CollectingMonitor(),
        UnsortedListDemon(),
        StepperMonitor(),
    ]

    @pytest.mark.parametrize("monitor", MONITORS, ids=lambda m: m.key)
    def test_parity_on_annotated_factorial(self, monitor):
        program = parse(
            """
            letrec mul = lambda x. lambda y. {mul(x, y)}: ({mul}: (x*y)) in
            letrec fac = lambda x. {fac(x)}: ({fac}: (if (x=0) then 1 else mul x (fac (x-1))))
            in fac 3
            """
        )
        # Only give each monitor its own annotations: labels vs headers
        # are already disjoint, so a single-monitor run is well-defined.
        interp = run_monitored(strict, program, type(monitor)())
        generated = generate_program(program, type(monitor)())
        answer, states = generated.run()
        assert answer == interp.answer == 6
        assert type(monitor)().report(states.get(monitor.key)) == interp.report()

    def test_demon_parity_on_paper_program(self, paper_demon_program):
        generated = generate_program(paper_demon_program, UnsortedListDemon())
        assert generated.report("demon") == frozenset({"l1", "l3"})


class TestEvaluationOrder:
    def test_argument_before_operator_hooks(self):
        # ({a}: f) ({b}: 1) must fire b's hooks before a's, as the
        # interpreter does (Figure 2).
        program = parse("({a}: (lambda x. x)) ({b}: 1)")
        monitor = LabelCounterMonitor()
        generated = generate_program(program, monitor)

        events = []

        from repro.monitoring.spec import FunctionSpec
        from repro.syntax.annotations import Label

        spy = FunctionSpec(
            key="spy",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            pre=lambda ann, term, ctx, st: (events.append(ann.name), st)[1],
        )
        generate_program(program, spy).run()
        assert events == ["b", "a"]

    def test_binary_operand_order(self):
        events = []
        from repro.monitoring.spec import FunctionSpec
        from repro.syntax.annotations import Label

        spy = FunctionSpec(
            key="spy",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            pre=lambda ann, term, ctx, st: (events.append(ann.name), st)[1],
        )
        # Figure 2: right operand (the application's outer argument) first.
        generate_program(parse("({l}: 1) + ({r}: 2)"), spy).run()
        interp_events = []
        spy2 = FunctionSpec(
            key="spy",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            pre=lambda ann, term, ctx, st: (interp_events.append(ann.name), st)[1],
        )
        run_monitored(strict, parse("({l}: 1) + ({r}: 2)"), spy2)
        assert events == interp_events == ["r", "l"]


class TestSiteMetadata:
    def test_site_count(self, paper_profiler_program):
        generated = generate_program(paper_profiler_program, ProfilerMonitor())
        assert generated.site_count == 2

    def test_unrecognized_erased(self):
        generated = generate_program(parse("{f(x)}: 1"), ProfilerMonitor())
        assert generated.site_count == 0
        assert "_pre(" not in generated.source
