"""Tests for the standard prelude."""

import pytest

from repro.languages import lazy, strict
from repro.monitoring.derive import run_monitored
from repro.monitors import ProfilerMonitor
from repro.prelude import PRELUDE_DEFINITIONS, prelude_session, with_prelude
from repro.semantics.values import from_python_list, to_python_list
from repro.toolbox.autoannotate import profile_functions


def run(source):
    return strict.evaluate(with_prelude(source))


class TestCombinators:
    def test_id(self):
        assert run("id 42") == 42

    def test_const(self):
        assert run("const 1 2") == 1

    def test_compose(self):
        assert run("compose (lambda x. x * 2) (lambda x. x + 1) 10") == 22

    def test_flip(self):
        assert run("flip (lambda a. lambda b. a - b) 1 10") == 9

    def test_twice(self):
        assert run("twice (lambda x. x * 3) 2") == 18


class TestLists:
    def test_append(self):
        assert to_python_list(run("append [1, 2] [3]")) == [1, 2, 3]

    def test_reverse(self):
        assert to_python_list(run("reverse [1, 2, 3]")) == [3, 2, 1]

    def test_last(self):
        assert run("last [1, 2, 3]") == 3

    def test_nth(self):
        assert run("nth 2 [10, 20, 30]") == 30

    def test_take_and_drop(self):
        assert to_python_list(run("take 2 [1, 2, 3]")) == [1, 2]
        assert to_python_list(run("drop 2 [1, 2, 3]")) == [3]
        assert run("take 5 [1]") == from_python_list([1])

    def test_map(self):
        assert to_python_list(run("map (lambda x. x * x) [1, 2, 3]")) == [1, 4, 9]

    def test_filter(self):
        assert to_python_list(run("filter (lambda x. x > 1) [0, 1, 2, 3]")) == [2, 3]

    def test_folds(self):
        assert run("foldr (lambda a. lambda b. a - b) 0 [10, 3]") == 7  # 10-(3-0)
        assert run("foldl (lambda a. lambda b. a - b) 0 [10, 3]") == -13

    def test_zip_with(self):
        assert to_python_list(run("zipWith (lambda a. lambda b. a + b) [1, 2] [10, 20, 30]")) == [11, 22]


class TestNumeric:
    def test_from_to(self):
        assert to_python_list(run("fromTo 1 4")) == [1, 2, 3, 4]
        assert run("fromTo 3 1") is not None  # empty list

    def test_sum_product(self):
        assert run("sum (fromTo 1 10)") == 55
        assert run("product (fromTo 1 5)") == 120

    def test_extrema(self):
        assert run("maximum [3, 9, 1]") == 9
        assert run("minimum [3, 9, 1]") == 1


class TestPredicates:
    def test_all_any(self):
        assert run("all? (lambda x. x > 0) [1, 2]") is True
        assert run("all? (lambda x. x > 0) [1, -2]") is False
        assert run("any? (lambda x. x < 0) [1, -2]") is True

    def test_member(self):
        assert run("member? 2 [1, 2, 3]") is True
        assert run("member? 9 [1, 2, 3]") is False


class TestSorting:
    def test_isort(self):
        assert to_python_list(run("isort [3, 1, 2]")) == [1, 2, 3]

    def test_qsort(self):
        assert to_python_list(run("qsort [5, 3, 8, 1, 5]")) == [1, 3, 5, 5, 8]

    def test_sorted_predicate(self):
        assert run("sorted? [1, 2, 2, 3]") is True
        assert run("sorted? [2, 1]") is False

    def test_sort_composition(self):
        assert run("sorted? (qsort (reverse (fromTo 1 20)))") is True


class TestIntegration:
    def test_prelude_is_monitorable(self):
        program = profile_functions(with_prelude("sum (map id [1, 2, 3])"), "map")
        result = run_monitored(strict, program, ProfilerMonitor())
        assert result.answer == 6
        assert result.report() == {"map": 4}

    def test_prelude_session(self):
        session = prelude_session()
        assert session.evaluate("sum (fromTo 1 4)").answer == 10
        result = session.evaluate("product (fromTo 1 4)", tools="profile", functions=["product"])
        assert result.answer == 24
        assert result.report("profile") == {"product": 1}

    def test_prelude_under_lazy(self):
        assert lazy.evaluate(with_prelude("sum (take 3 (fromTo 1 100))")) == 6

    def test_every_definition_is_lambda(self):
        from repro.syntax.ast import Lam, strip_annotations_shallow
        from repro.syntax.parser import parse

        for name, source in PRELUDE_DEFINITIONS.items():
            assert isinstance(strip_annotations_shallow(parse(source)), Lam), name
