"""Tests for annotation values and their surface syntax."""

import pytest

from repro.errors import ParseError
from repro.syntax.annotations import (
    FnHeader,
    Label,
    Tagged,
    header,
    label,
    parse_annotation_text,
    tagged,
    untag,
)


class TestParsing:
    def test_label(self):
        assert parse_annotation_text("fac") == Label("fac")

    def test_label_strips_whitespace(self):
        assert parse_annotation_text("  fac  ") == Label("fac")

    def test_header_single_param(self):
        assert parse_annotation_text("fac(x)") == FnHeader("fac", ("x",))

    def test_header_multi_param(self):
        assert parse_annotation_text("mul(x, y)") == FnHeader("mul", ("x", "y"))

    def test_header_no_params(self):
        assert parse_annotation_text("main()") == FnHeader("main", ())

    def test_tagged_label(self):
        assert parse_annotation_text("profile: fac") == Tagged("profile", Label("fac"))

    def test_tagged_header(self):
        assert parse_annotation_text("trace: mul(x, y)") == Tagged(
            "trace", FnHeader("mul", ("x", "y"))
        )

    def test_nested_tags(self):
        parsed = parse_annotation_text("a: b: c")
        assert parsed == Tagged("a", Tagged("b", Label("c")))

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_annotation_text("   ")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_annotation_text("1 + 2")

    def test_bad_param_rejected(self):
        with pytest.raises(ParseError):
            parse_annotation_text("f(1)")


class TestRendering:
    @pytest.mark.parametrize(
        "text", ["fac", "mul(x, y)", "trace: f(a)", "profile: p0"]
    )
    def test_render_roundtrip(self, text):
        annotation = parse_annotation_text(text)
        assert parse_annotation_text(annotation.render()) == annotation


class TestHelpers:
    def test_constructors(self):
        assert label("x") == Label("x")
        assert header("f", "a", "b") == FnHeader("f", ("a", "b"))
        assert tagged("t", "f(a)") == Tagged("t", FnHeader("f", ("a",)))

    def test_untag_matching(self):
        annotation = Tagged("profile", Label("fac"))
        assert untag(annotation, "profile") == Label("fac")

    def test_untag_wrong_tool(self):
        annotation = Tagged("profile", Label("fac"))
        assert untag(annotation, "trace") is None

    def test_untag_bare_with_tool(self):
        assert untag(Label("fac"), "profile") is None

    def test_untag_bare_without_tool(self):
        assert untag(Label("fac"), None) == Label("fac")

    def test_untag_tagged_without_tool(self):
        assert untag(Tagged("t", Label("x")), None) is None

    def test_annotations_hashable_and_equal(self):
        assert {Label("a"), Label("a")} == {Label("a")}
        assert FnHeader("f", ("x",)) != FnHeader("f", ("y",))
