"""Executable soundness (Theorem 7.7): monitors never change answers."""

import pytest
from hypothesis import given, settings

from repro.languages import lazy, strict
from repro.monitoring.soundness import (
    SoundnessViolation,
    assert_sound,
    check_soundness,
)
from repro.monitoring.spec import FunctionSpec
from repro.monitors import (
    CollectingMonitor,
    LabelCounterMonitor,
    ProfilerMonitor,
    StepperMonitor,
    TracerMonitor,
    UnsortedListDemon,
)
from repro.syntax.annotations import Label
from repro.syntax.parser import parse

from tests.generators import closed_program

ALL_TOOLBOX = [
    LabelCounterMonitor(),
    CollectingMonitor(namespace="collect"),
    UnsortedListDemon(namespace="demon"),
    StepperMonitor(namespace="step"),
    TracerMonitor(),
]


class TestToolboxSoundness:
    @pytest.mark.parametrize("monitor", ALL_TOOLBOX, ids=lambda m: m.key)
    def test_each_monitor_sound_on_paper_program(self, monitor, paper_tracer_program):
        result = assert_sound(strict, paper_tracer_program, monitor)
        assert result.answer == 6

    def test_full_stack_sound(self, paper_tracer_program):
        result = assert_sound(strict, paper_tracer_program, ALL_TOOLBOX)
        assert result.answer == 6

    def test_sound_on_corpus(self, corpus_case):
        program, expected = corpus_case
        result = assert_sound(strict, program, LabelCounterMonitor())
        assert result.answer == expected


class TestErrorAgreement:
    def test_error_programs_agree(self):
        program = parse("{p}: (hd [])")
        report = check_soundness(strict, program, LabelCounterMonitor())
        assert report.agreed

    def test_unbound_agrees(self):
        program = parse("{p}: nosuch")
        report = check_soundness(strict, program, LabelCounterMonitor())
        assert report.agreed


class TestViolationDetection:
    def test_rogue_monitor_detected(self):
        # A "monitor" that mutates a list value it is shown — the one
        # thing the framework cannot prevent in a host language with
        # mutable references.  The checker catches it.
        def corrupt(ann, term, ctx, result, st):
            from repro.semantics.values import Cons

            if isinstance(result, Cons):
                result.head = 999
            return st

        rogue = FunctionSpec(
            key="rogue",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            post=corrupt,
        )
        program = parse("hd ({p}: [1, 2])")
        with pytest.raises(SoundnessViolation):
            assert_sound(strict, program, rogue)


class TestLazySoundness:
    def test_lazy_monitored_agrees(self):
        program = parse(
            "letrec f = lambda n. if n = 0 then 0 else {hit}: f (n - 1) in f 3"
        )
        result = assert_sound(lazy, program, LabelCounterMonitor())
        assert result.answer == 0


@settings(max_examples=120, deadline=None)
@given(closed_program())
def test_soundness_on_random_programs(program):
    """Theorem 7.7 over hypothesis-generated annotated programs."""
    stack = [LabelCounterMonitor(), TracerMonitor()]
    report = check_soundness(strict, program, stack, max_steps=2_000_000)
    assert report.agreed


@settings(max_examples=60, deadline=None)
@given(closed_program())
def test_soundness_under_lazy_semantics(program):
    report = check_soundness(lazy, program, [LabelCounterMonitor()], max_steps=2_000_000)
    assert report.agreed


@settings(max_examples=60, deadline=None)
@given(closed_program())
def test_strict_and_lazy_agree_on_terminating_programs(program):
    """For the generated (total) programs, CBV and CBN coincide."""
    from repro.syntax.ast import strip_annotations

    erased = strip_annotations(program)
    strict_answer = strict.evaluate(erased, max_steps=2_000_000)
    lazy_answer = lazy.evaluate(erased, max_steps=2_000_000)
    assert strict_answer == lazy_answer
