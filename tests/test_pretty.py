"""Pretty-printer tests, including parse/pretty round-trips."""

import pytest

from repro.syntax.annotations import FnHeader, Label
from repro.syntax.ast import Annotated, App, Const, If, Lam, Let, Letrec, Var
from repro.syntax.parser import parse
from repro.syntax.pretty import pretty


ROUNDTRIP_SOURCES = [
    "42",
    "true",
    '"hi there"',
    "x + y * z",
    "(x + y) * z",
    "f x y",
    "f (g x)",
    "lambda x y. x + y",
    "if a then b else c",
    "let x = 1 in x + x",
    "letrec f = lambda x. f x in f 1",
    "letrec f = lambda x. g x and g = lambda y. f y in f 0",
    "[1, 2, 3]",
    "1 :: 2 :: []",
    "{p}: x",
    "{fac(x)}: if x = 0 then 1 else x * fac (x - 1)",
    "{n}: n * m",
    "{trace: mul(x, y)}:(x * y)",
    "-x",
    "f (-3)",
    "a <= b",
    '"a" ++ "b"',
]


@pytest.mark.parametrize("source", ROUNDTRIP_SOURCES)
def test_roundtrip(source):
    """pretty . parse is the identity up to formatting."""
    tree = parse(source)
    assert parse(pretty(tree)) == tree


class TestRendering:
    def test_constants(self):
        assert pretty(Const(42)) == "42"
        assert pretty(Const(True)) == "true"
        assert pretty(Const(False)) == "false"
        assert pretty(Const("hi")) == '"hi"'

    def test_string_escapes(self):
        assert pretty(Const('a"b')) == '"a\\"b"'
        assert pretty(Const("a\nb")) == '"a\\nb"'

    def test_negative_constant_parenthesized_in_app(self):
        expr = App(Var("f"), Const(-3))
        assert pretty(expr) == "f (-3)"

    def test_infix_resugaring(self):
        expr = App(App(Var("+"), Var("x")), Var("y"))
        assert pretty(expr) == "x + y"

    def test_precedence_parens(self):
        expr = App(App(Var("*"), App(App(Var("+"), Var("a")), Var("b"))), Var("c"))
        assert pretty(expr) == "(a + b) * c"

    def test_list_resugaring(self):
        assert pretty(parse("[1, 2, 3]")) == "[1, 2, 3]"

    def test_empty_list(self):
        assert pretty(parse("[]")) == "[]"

    def test_logic_operators(self):
        assert pretty(parse("a && b || c")) == "a && b || c"

    def test_cons_with_dynamic_tail(self):
        assert pretty(parse("x :: xs")) == "x :: xs"

    def test_lambda_currying_collapsed(self):
        expr = Lam("x", Lam("y", Var("x")))
        assert pretty(expr) == "lambda x y. x"

    def test_annotated_atom(self):
        assert pretty(Annotated(Label("p"), Var("x"))) == "{p}: x"

    def test_annotated_compound_parenthesized(self):
        expr = Annotated(Label("p"), App(App(Var("+"), Var("x")), Const(1)))
        assert pretty(expr) == "{p}: (x + 1)"
        assert parse(pretty(expr)) == expr

    def test_annotated_if_open(self):
        expr = Annotated(Label("f"), If(Var("a"), Const(1), Const(2)))
        assert pretty(expr) == "{f}: if a then 1 else 2"

    def test_header_annotation(self):
        expr = Annotated(FnHeader("mul", ("x", "y")), Var("z"))
        assert pretty(expr) == "{mul(x, y)}: z"

    def test_let(self):
        assert pretty(Let("x", Const(1), Var("x"))) == "let x = 1 in x"

    def test_letrec_multi(self):
        expr = parse("letrec f = lambda x. x and g = lambda y. y in 1")
        text = pretty(expr)
        assert "and g" in text

    def test_nested_comparison_parenthesized(self):
        expr = App(App(Var("="), App(App(Var("="), Var("a")), Var("b"))), Var("c"))
        assert parse(pretty(expr)) == expr


def test_roundtrip_on_corpus(corpus_case):
    program, _ = corpus_case
    assert parse(pretty(program)) == program
