"""Tests for the call-graph and history monitors."""

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import CallGraphMonitor, HistoryMonitor
from repro.monitors.callgraph import ROOT
from repro.syntax.parser import parse

PROGRAM = parse(
    """
    letrec mul = lambda x. lambda y. {mul}:(x*y) in
    letrec fac = lambda x. {fac}:if (x=0) then 1 else mul x (fac (x-1))
    in fac 3
    """
)


class TestCallGraph:
    def test_edges(self):
        result = run_monitored(strict, PROGRAM, CallGraphMonitor())
        report = result.report()
        assert report.edges[(ROOT, "fac")] == 1
        assert report.edges[("fac", "fac")] == 3
        assert report.edges[("fac", "mul")] == 3

    def test_call_counts_match_profiler(self):
        result = run_monitored(strict, PROGRAM, CallGraphMonitor())
        report = result.report()
        assert report.calls == {"fac": 4, "mul": 3}

    def test_callees_and_callers(self):
        result = run_monitored(strict, PROGRAM, CallGraphMonitor())
        report = result.report()
        assert report.callees_of("fac") == {"fac": 3, "mul": 3}
        assert report.callers_of("mul") == {"fac": 3}

    def test_inclusive_counts(self):
        result = run_monitored(strict, PROGRAM, CallGraphMonitor())
        report = result.report()
        # Every monitored activation (7 total) happens inside fac.
        assert report.inclusive["fac"] == 7
        # mul activations nest nothing else.
        assert report.inclusive["mul"] == 3

    def test_stack_unwinds(self):
        result = run_monitored(strict, PROGRAM, CallGraphMonitor())
        monitor = result.monitors[0]
        assert result.state_of(monitor).stack == ()

    def test_render(self):
        result = run_monitored(strict, PROGRAM, CallGraphMonitor())
        text = result.report().render()
        assert "fac -> mul: 3" in text
        assert "inclusive activations:" in text


class TestHistory:
    def test_event_count(self):
        result = run_monitored(strict, PROGRAM, HistoryMonitor())
        history = result.report()
        assert len(history) == 14  # 7 enters + 7 exits
        assert history.dropped == 0

    def test_sequence_numbers_monotone(self):
        result = run_monitored(strict, PROGRAM, HistoryMonitor())
        history = result.report()
        sequences = [e.sequence for e in history.events]
        assert sequences == sorted(sequences)
        assert sequences == list(range(14))

    def test_activations_and_returns(self):
        result = run_monitored(strict, PROGRAM, HistoryMonitor())
        history = result.report()
        assert len(history.activations_of("fac")) == 4
        assert len(history.returns_of("mul")) == 3

    def test_nth_return_value(self):
        result = run_monitored(strict, PROGRAM, HistoryMonitor())
        history = result.report()
        # mul returns 1, 2, 6 in completion order.
        assert history.nth_return_value("mul", 0) == "1"
        assert history.nth_return_value("mul", 2) == "6"
        assert history.nth_return_value("mul", 9) is None
        # The last fac return is the program answer.
        assert history.nth_return_value("fac", 3) == "6"

    def test_at_sequence(self):
        result = run_monitored(strict, PROGRAM, HistoryMonitor())
        history = result.report()
        event = history.at_sequence(0)
        assert event.kind == "enter"
        assert event.label == "fac"
        assert history.at_sequence(9999) is None

    def test_bounded_capacity_drops_oldest(self):
        program = parse(
            "letrec f = lambda n. if n = 0 then 0 else {tick}: f (n - 1) in f 50"
        )
        result = run_monitored(strict, program, HistoryMonitor(capacity=10))
        history = result.report()
        assert len(history) == 10
        assert history.dropped == 90  # 100 events total, kept 10
        # Kept events are the most recent ones.
        assert history.events[-1].sequence == 99

    def test_render(self):
        result = run_monitored(strict, PROGRAM, HistoryMonitor())
        text = result.report().render(limit=3)
        assert "<- fac = 6" in text

    def test_capacity_validation(self):
        import pytest

        with pytest.raises(ValueError):
            HistoryMonitor(capacity=0)
