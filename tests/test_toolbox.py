"""Tests for the programming environment (registry, sessions, autoannotation)."""

import pytest

from repro.errors import MonitorError, ReproError
from repro.languages import imperative, lazy, strict
from repro.monitoring.compose import MonitorStack
from repro.monitors import ProfilerMonitor, TracerMonitor
from repro.syntax.annotations import FnHeader, Label, Tagged
from repro.syntax.ast import Annotated, annotations_in
from repro.syntax.parser import parse
from repro.toolbox import Session, Toolchain, evaluate, make_tool
from repro.toolbox.autoannotate import (
    annotate_function_bodies,
    annotate_matching,
    profile_functions,
    trace_functions,
)

FAC_DEFS = "letrec fac = lambda x. if x = 0 then 1 else x * fac (x - 1) in fac 4"


class TestRegistry:
    def test_make_tool(self):
        assert make_tool("profile").key == "profile"
        assert make_tool("trace").key == "trace"

    def test_unknown_tool(self):
        with pytest.raises(MonitorError) as exc:
            make_tool("nonsense")
        assert "toolbox has" in str(exc.value)

    def test_namespace_passed(self):
        tool = make_tool("profile", namespace="p")
        assert tool.recognize(Tagged("p", Label("f"))) == Label("f")
        assert tool.recognize(Label("f")) is None


class TestEvaluate:
    def test_plain_evaluation(self):
        result = evaluate([], "2 + 3")
        assert result.answer == 5
        assert result.reports == {}

    def test_single_monitor(self):
        result = evaluate(ProfilerMonitor(), "letrec f = lambda x. {f}: x in f 9")
        assert result.answer == 9
        assert result.report("profile") == {"f": 1}

    def test_toolchain_with_ampersand(self):
        program = "letrec f = lambda x. {profile: f}: ({trace: f(x)}: x) in f 1"
        chain = (
            make_tool("profile", namespace="profile")
            & make_tool("trace", namespace="trace")
            & strict
        )
        assert isinstance(chain, Toolchain)
        result = evaluate(chain, program)
        assert result.answer == 1
        assert result.report("profile") == {"f": 1}

    def test_string_toolchain(self):
        result = evaluate("profile & strict", "letrec f = lambda x. {f}: x in f 2")
        assert result.answer == 2
        assert result.report("profile") == {"f": 1}

    def test_string_toolchain_lazy(self):
        result = evaluate("profile & lazy", "let d = {d}: 1 in 5")
        assert result.answer == 5
        assert result.report("profile") == {}

    def test_report_without_monitors(self):
        result = evaluate([], "1")
        with pytest.raises(MonitorError):
            result.report()

    def test_language_override(self):
        result = evaluate([], "let d = hd [] in 3", language=lazy)
        assert result.answer == 3


class TestAutoAnnotation:
    def test_profile_style(self):
        program = annotate_function_bodies(parse(FAC_DEFS), style="label")
        annotations = annotations_in(program)
        assert Label("fac") in annotations

    def test_header_style_curried(self):
        source = "letrec mul = lambda x. lambda y. x * y in mul 2 3"
        program = annotate_function_bodies(parse(source), style="header")
        assert FnHeader("mul", ("x", "y")) in annotations_in(program)

    def test_names_filter(self):
        source = "letrec f = lambda x. x and g = lambda y. y in f (g 1)"
        program = annotate_function_bodies(parse(source), names=["g"])
        assert annotations_in(program) == (Label("g"),)

    def test_namespace(self):
        program = annotate_function_bodies(
            parse(FAC_DEFS), style="label", namespace="profile"
        )
        assert Tagged("profile", Label("fac")) in annotations_in(program)

    def test_idempotent(self):
        once = annotate_function_bodies(parse(FAC_DEFS))
        twice = annotate_function_bodies(once)
        assert once == twice

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            annotate_function_bodies(parse(FAC_DEFS), style="weird")

    def test_annotated_program_still_correct(self):
        program = trace_functions(parse(FAC_DEFS))
        assert strict.evaluate(program) == 24

    def test_annotate_matching(self):
        from repro.syntax.ast import If

        program = annotate_matching(
            parse("if a then 1 else 2"),
            lambda node: "branch" if isinstance(node, If) else None,
        )
        assert isinstance(program, Annotated)

    def test_profile_functions_shorthand(self):
        program = profile_functions(parse(FAC_DEFS), "fac")
        assert Label("fac") in annotations_in(program)


class TestSession:
    def test_define_and_evaluate(self):
        session = Session()
        session.define("double", "lambda x. x + x")
        assert session.evaluate("double 21").answer == 42

    def test_definitions_recursive(self):
        session = Session()
        session.define("fac", "lambda x. if x = 0 then 1 else x * fac (x - 1)")
        assert session.evaluate("fac 5").answer == 120

    def test_mutual_recursion(self):
        session = Session()
        session.define("even", "lambda n. if n = 0 then true else odd (n - 1)")
        session.define("odd", "lambda n. if n = 0 then false else even (n - 1)")
        assert session.evaluate("even 8").answer is True

    def test_tools_auto_annotate(self):
        session = Session()
        session.define("fac", "lambda x. if x = 0 then 1 else x * fac (x - 1)")
        result = session.evaluate("fac 4", tools="profile & trace")
        assert result.answer == 24
        assert result.report("profile") == {"fac": 5}
        assert "[FAC receives (4)]" in result.report("trace")

    def test_functions_filter(self):
        session = Session()
        session.define("f", "lambda x. x")
        session.define("g", "lambda y. f y")
        result = session.evaluate("g 1", tools="profile", functions=["f"])
        assert result.report("profile") == {"f": 1}

    def test_non_lambda_definition_rejected(self):
        session = Session()
        with pytest.raises(ReproError):
            session.define("x", "42")

    def test_undefine(self):
        session = Session()
        session.define("f", "lambda x. x")
        session.undefine("f")
        assert session.names() == ()

    def test_redefinition_replaces(self):
        session = Session()
        session.define("f", "lambda x. 1")
        session.define("f", "lambda x. 2")
        assert session.evaluate("f 0").answer == 2

    def test_lazy_session(self):
        session = Session(language=lazy)
        session.define("f", "lambda x. 7")
        assert session.evaluate("f (hd [])").answer == 7

    def test_explicit_monitor_objects(self):
        session = Session()
        session.define("fac", "lambda x. if x = 0 then 1 else x * fac (x - 1)")
        monitor = ProfilerMonitor(namespace="profile")
        result = session.evaluate("fac 3", tools=["profile"])
        assert result.report("profile") == {"fac": 4}
