"""Soundness under monitor faults, made executable (differential suite).

Section 7's theorem says monitoring cannot change a program's standard
answer.  That proof assumes total monitoring functions; these tests pin
down what the *runtime* guarantees when a monitor's ``pre``/``post``
raises anyway, under each fault policy:

* ``propagate`` (default) — the exception escapes, identically on both
  engines, and pre-existing behavior is untouched;
* ``quarantine`` — the faulting monitor is disabled for the rest of the
  run, its annotations take the unclaimed path, and the standard answer
  (or the standard *error*) is exactly that of the unmonitored program;
* ``log`` — faults accumulate as records while monitoring continues.

Every property is checked on the reference interpreter AND the staged
compiled engine, and the two must agree on answers, fault records and
surviving monitor states — including on hypothesis-generated programs.
"""

import pytest
from hypothesis import given, settings

from repro.errors import EvalError, MonitorError
from repro.languages.strict import strict
from repro.monitoring.derive import run_monitored
from repro.monitoring.faults import (
    FAULT_POLICIES,
    FaultLog,
    FlakyMonitor,
    InjectedFault,
    MonitorFault,
    check_fault_policy,
)
from repro.monitors import LabelCounterMonitor, ProfilerMonitor, TracerMonitor
from repro.syntax.parser import parse

from tests.fault_injection import (
    FAC_LABELED,
    FAC_TRACED,
    assert_fault_parity,
    flaky_counter,
    run_both_with_faults,
)
from tests.generators import closed_program

ENGINES = ["reference", "compiled", "codegen"]


# -- policy plumbing -------------------------------------------------------------


class TestPolicyValidation:
    def test_known_policies(self):
        for policy in FAULT_POLICIES:
            check_fault_policy(policy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(MonitorError):
            check_fault_policy("retry")

    def test_run_monitored_rejects_unknown_policy(self):
        with pytest.raises(MonitorError):
            run_monitored(
                strict, parse("1"), [], fault_policy="ignore-everything"
            )

    def test_fault_log_refuses_propagate(self):
        with pytest.raises(MonitorError):
            FaultLog("propagate")

    def test_flaky_monitor_needs_failure_point(self):
        with pytest.raises(MonitorError):
            FlakyMonitor(ProfilerMonitor())

    def test_flaky_monitor_rejects_bad_phase(self):
        with pytest.raises(MonitorError):
            FlakyMonitor(ProfilerMonitor(), fail_on=1, phase="during")


class TestMonitorFaultRecord:
    def test_equality_ignores_exception_identity(self):
        a = MonitorFault("p", "pre", "ValueError", "boom", error=ValueError("boom"))
        b = MonitorFault("p", "pre", "ValueError", "boom", error=ValueError("boom"))
        assert a == b

    def test_render(self):
        fault = MonitorFault("profile", "post", "KeyError", "'x'")
        assert fault.render() == "profile.post raised KeyError: 'x'"


# -- propagate: the back-compat default ------------------------------------------


class TestPropagateDefault:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_pre_fault_escapes(self, engine):
        with pytest.raises(InjectedFault):
            run_monitored(
                strict, parse(FAC_LABELED), flaky_counter(3), engine=engine
            )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_post_fault_escapes(self, engine):
        with pytest.raises(InjectedFault):
            run_monitored(
                strict,
                parse(FAC_LABELED),
                flaky_counter(3, phase="post"),
                engine=engine,
            )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_healthy_run_reports_no_faults(self, engine):
        result = run_monitored(
            strict, parse(FAC_LABELED), LabelCounterMonitor(), engine=engine
        )
        assert result.healthy()
        assert result.faults == ()
        assert result.fault_policy == "propagate"
        assert "faults" not in result.reports()


# -- quarantine: the tentpole guarantee ------------------------------------------


class TestQuarantine:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("phase", ["pre", "post"])
    def test_answer_is_standard_answer(self, engine, phase):
        program = parse(FAC_LABELED)
        expected = strict.evaluate(program)
        result = run_monitored(
            strict,
            program,
            flaky_counter(2, phase=phase),
            engine=engine,
            fault_policy="quarantine",
        )
        assert result.answer == expected == 24
        assert not result.healthy()
        assert result.quarantined_keys() == ("count",)
        assert len(result.faults) == 1
        fault = result.faults[0]
        assert fault.monitor_key == "count"
        assert fault.phase == phase
        assert fault.error_type == "InjectedFault"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_monitor_disabled_for_rest_of_run(self, engine):
        # fac 4 hits {fac} five times; failing on call 2 must leave the
        # counter at 1 — later activations take the unclaimed path.
        result = run_monitored(
            strict,
            parse(FAC_LABELED),
            flaky_counter(2),
            engine=engine,
            fault_policy="quarantine",
        )
        assert result.report("count") == {"fac": 1}
        assert len(result.faults) == 1  # exactly one fault, then silence

    @pytest.mark.parametrize("engine", ENGINES)
    def test_program_error_still_the_programs_error(self, engine):
        # Quarantine must not mask the program's own error either.
        program = parse(
            "letrec f = lambda x. {fac}: if x = 0 then 1 / 0 else f (x - 1) "
            "in f 3"
        )
        with pytest.raises(EvalError) as monitored_exc:
            run_monitored(
                strict,
                program,
                flaky_counter(2),
                engine=engine,
                fault_policy="quarantine",
            )
        with pytest.raises(EvalError) as plain_exc:
            strict.evaluate(program)
        assert str(monitored_exc.value) == str(plain_exc.value)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_healthy_neighbors_unaffected(self, engine):
        # A faulting profiler must not perturb the tracer next to it.
        program = parse(FAC_TRACED.replace("{fac(x)}:", "{fac(x)}: {fac}:"))
        flaky = flaky_counter(2)
        tracer = TracerMonitor()
        result = run_monitored(
            strict,
            program,
            [flaky, tracer],
            engine=engine,
            fault_policy="quarantine",
        )
        healthy = run_monitored(strict, program, TracerMonitor())
        assert result.answer == 24
        assert result.quarantined_keys() == ("count",)
        assert (
            result.state_of("trace")[0].render()
            == healthy.state_of("trace")[0].render()
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_faults_rendered_in_reports(self, engine):
        result = run_monitored(
            strict,
            parse(FAC_LABELED),
            flaky_counter(1),
            engine=engine,
            fault_policy="quarantine",
        )
        reports = result.reports()
        assert "faults" in reports
        (line,) = reports["faults"]
        assert "count.pre raised InjectedFault" in line


# -- log: record everything, disable nothing -------------------------------------


class TestLogPolicy:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_monitor_keeps_running(self, engine):
        # The counter increment of the faulting call is dropped, so call
        # #3 keeps failing on every later activation: 5 hits, first two
        # counted, three recorded faults.
        result = run_monitored(
            strict,
            parse(FAC_LABELED),
            flaky_counter(3),
            engine=engine,
            fault_policy="log",
        )
        assert result.answer == 24
        assert result.report("count") == {"fac": 2}
        assert len(result.faults) == 3
        assert result.quarantined_keys() == ()  # log never disables

    @pytest.mark.parametrize("engine", ENGINES)
    def test_post_fault_keeps_pre_updates(self, engine):
        result = run_monitored(
            strict,
            parse(FAC_LABELED),
            flaky_counter(2, phase="post"),
            engine=engine,
            fault_policy="log",
        )
        # pre hooks all ran: full count despite the post faults.
        assert result.report("count") == {"fac": 5}
        assert not result.healthy()


# -- differential: both engines agree under injected failures ---------------------


class TestEngineFaultParity:
    @pytest.mark.parametrize("policy", ["quarantine", "log"])
    @pytest.mark.parametrize("fail_on", [1, 2, 5])
    @pytest.mark.parametrize("phase", ["pre", "post"])
    def test_fac_parity(self, policy, fail_on, phase):
        ref, com = run_both_with_faults(
            FAC_LABELED,
            lambda: flaky_counter(fail_on, phase=phase),
            fault_policy=policy,
        )
        assert_fault_parity(ref, com)
        assert ref.answer == 24

    def test_mixed_stack_parity(self):
        program = FAC_TRACED.replace("{fac(x)}:", "{fac(x)}: {fac}:")
        ref, com = run_both_with_faults(
            program,
            lambda: [flaky_counter(2), TracerMonitor()],
            fault_policy="quarantine",
        )
        assert_fault_parity(ref, com, surviving_keys=["trace"])

    def test_seeded_random_failures_are_engine_deterministic(self):
        ref, com = run_both_with_faults(
            FAC_LABELED,
            lambda: FlakyMonitor(
                LabelCounterMonitor(), seed=1234, failure_rate=0.5
            ),
            fault_policy="log",
        )
        assert_fault_parity(ref, com)
        assert ref.faults  # rate 0.5 over 5 calls: effectively certain

    @settings(max_examples=60, deadline=None)
    @given(closed_program())
    def test_random_programs_quarantine_parity(self, program):
        """The headline property: on arbitrary generated programs, a
        monitor faulting mid-run never changes the answer, and both
        engines agree on answer, fault records, and monitor state."""
        expected = strict.evaluate(program, max_steps=2_000_000)
        ref = run_monitored(
            strict,
            program,
            flaky_counter(2),
            engine="reference",
            fault_policy="quarantine",
            max_steps=2_000_000,
        )
        com = run_monitored(
            strict,
            program,
            flaky_counter(2),
            engine="compiled",
            fault_policy="quarantine",
            max_steps=2_000_000,
        )
        assert ref.answer == com.answer == expected
        assert ref.faults == com.faults
        assert ref.state_of("count") == com.state_of("count")


# -- repeated runs of one compiled program ---------------------------------------


class TestCompiledProgramReuse:
    def test_fault_log_resets_between_runs(self):
        from repro.monitoring.state import MonitorStateVector
        from repro.semantics.compiled import compile_program

        program = parse(FAC_LABELED)
        flaky = flaky_counter(2)
        compiled = compile_program(
            program, monitors=[flaky], fault_policy="quarantine"
        )
        for _ in range(3):
            initial = MonitorStateVector.initial([flaky])
            answer, states = compiled.run(initial_ms=initial)
            assert answer == 24
            # Each run faults afresh at call 2 — quarantine is per-run.
            assert len(compiled.fault_log.faults) == 1
            assert compiled.fault_log.disabled == {"count"}
