"""Tests for the monitor-spec validator."""

import pytest

from repro.errors import MonitorError
from repro.monitoring.spec import FunctionSpec, MonitorSpec
from repro.monitoring.validate import assert_valid_monitor, validate_monitor
from repro.monitors import (
    CallGraphMonitor,
    CollectingMonitor,
    CoverageMonitor,
    HistoryMonitor,
    LabelCounterMonitor,
    PairCounterMonitor,
    ProfilerMonitor,
    StepperMonitor,
    TracerMonitor,
    UnsortedListDemon,
    WatchMonitor,
)
from repro.syntax.annotations import Label

TOOLBOX_MONITORS = [
    CallGraphMonitor(),
    CollectingMonitor(),
    CoverageMonitor(),
    HistoryMonitor(),
    LabelCounterMonitor(),
    PairCounterMonitor(),
    ProfilerMonitor(),
    StepperMonitor(),
    TracerMonitor(),
    UnsortedListDemon(),
    WatchMonitor(["x"]),
]


@pytest.mark.parametrize("monitor", TOOLBOX_MONITORS, ids=lambda m: type(m).__name__)
def test_every_toolbox_monitor_validates(monitor):
    assert validate_monitor(monitor) == []
    assert_valid_monitor(monitor)  # no raise


class TestFindings:
    def test_missing_key(self):
        class Broken(MonitorSpec):
            key = ""

            def recognize(self, annotation):
                return None

            def initial_state(self):
                return None

        findings = validate_monitor(Broken())
        assert any(f.check == "key" for f in findings)

    def test_raising_recognize(self):
        spec = FunctionSpec(
            key="bad",
            recognize=lambda a: a.nonexistent_attribute,
            initial=lambda: 0,
        )
        findings = validate_monitor(spec)
        assert any(f.check == "recognize" for f in findings)

    def test_shared_initial_state(self):
        shared = {}
        spec = FunctionSpec(
            key="bad",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: shared,
        )
        findings = validate_monitor(spec)
        assert any(f.check == "initial_state" for f in findings)

    def test_mutating_pre(self):
        def impure_pre(ann, term, ctx, state):
            state["hits"] = state.get("hits", 0) + 1  # in-place!
            return state

        spec = FunctionSpec(
            key="bad",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: {},
            pre=impure_pre,
        )
        findings = validate_monitor(spec)
        assert any(f.check == "purity" for f in findings)

    def test_raising_pre(self):
        spec = FunctionSpec(
            key="bad",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: 0,
            pre=lambda ann, term, ctx, st: 1 / 0,
        )
        findings = validate_monitor(spec)
        assert any(f.check == "run" for f in findings)

    def test_raising_report(self):
        spec = FunctionSpec(
            key="bad",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: 0,
            report=lambda s: s.undefined,  # type: ignore[union-attr]
        )
        findings = validate_monitor(spec)
        assert any(f.check == "report" for f in findings)

    def test_assert_raises_with_details(self):
        spec = FunctionSpec(
            key="bad",
            recognize=lambda a: a.boom,
            initial=lambda: 0,
        )
        with pytest.raises(MonitorError) as exc:
            assert_valid_monitor(spec)
        assert "recognize" in str(exc.value)
