"""Tests for the error hierarchy and diagnostics."""

import pytest

from repro.errors import (
    EvalError,
    LexError,
    MonitorError,
    NO_LOCATION,
    NotAFunctionError,
    ParseError,
    PrimitiveError,
    ReproError,
    SourceLocation,
    SpecializationError,
    StepLimitExceeded,
    UnboundIdentifierError,
    format_source_context,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            LexError,
            ParseError,
            EvalError,
            MonitorError,
            SpecializationError,
        ],
    )
    def test_all_are_repro_errors(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_eval_error_family(self):
        for exc_type in (UnboundIdentifierError, NotAFunctionError, PrimitiveError, StepLimitExceeded):
            assert issubclass(exc_type, EvalError)

    def test_unbound_carries_name(self):
        error = UnboundIdentifierError("foo")
        assert error.name == "foo"
        assert "foo" in str(error)

    def test_step_limit_carries_limit(self):
        assert StepLimitExceeded(100).limit == 100

    def test_location_in_message(self):
        loc = SourceLocation(3, 7, 20)
        error = EvalError("boom", loc)
        assert "3:7" in str(error)

    def test_no_location_omitted(self):
        assert "at" not in str(EvalError("boom"))

    def test_parse_error_prefix(self):
        error = ParseError("bad token", SourceLocation(1, 2, 1))
        assert str(error).startswith("parse error at 1:2")


class TestSourceContext:
    def test_caret_points_at_column(self):
        source = "let x = = 1 in x"
        context = format_source_context(source, SourceLocation(1, 9, 8))
        line, caret = context.split("\n")
        assert line == source
        assert caret.index("^") == 8

    def test_multiline_source(self):
        source = "a\nb c d\ne"
        context = format_source_context(source, SourceLocation(2, 3, 4))
        assert context.split("\n")[0] == "b c d"

    def test_no_location(self):
        assert format_source_context("abc", NO_LOCATION) == ""

    def test_out_of_range_line(self):
        assert format_source_context("abc", SourceLocation(9, 1, 0)) == ""

    def test_long_line_truncated(self):
        source = "x" * 200
        context = format_source_context(source, SourceLocation(1, 150, 149))
        assert "..." in context
        assert "^" in context

    def test_str_of_location(self):
        assert str(SourceLocation(4, 5, 10)) == "4:5"


class TestCliDiagnostics:
    def test_parse_error_shows_context(self, capsys):
        from repro.cli import main

        assert main(["run", "-e", "let x = = 1 in x"]) == 1
        err = capsys.readouterr().err
        assert "^" in err
        assert "parse error" in err
