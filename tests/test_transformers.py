"""Tests for monitor transformers."""

import pytest

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitoring.transformers import (
    bounded,
    filtered,
    mapped_report,
    renamed,
    sampled,
)
from repro.monitoring.validate import validate_monitor
from repro.monitors import LabelCounterMonitor, ProfilerMonitor, StepperMonitor
from repro.syntax.parser import parse

LOOP = parse(
    "letrec f = lambda n. if n = 0 then {done}: 0 else {tick}: f (n - 1) in f 10"
)


class TestFiltered:
    def test_predicate_selects_annotations(self):
        monitor = filtered(
            LabelCounterMonitor(), lambda ann: ann.name == "tick"
        )
        result = run_monitored(strict, LOOP, monitor)
        assert result.report() == {"tick": 10}

    def test_everything_filtered(self):
        monitor = filtered(LabelCounterMonitor(), lambda ann: False)
        result = run_monitored(strict, LOOP, monitor)
        assert result.report() == {}


class TestSampled:
    def test_every_other(self):
        monitor = sampled(LabelCounterMonitor(), every=2)
        result = run_monitored(strict, LOOP, monitor)
        # 11 recognized activations (10 ticks + 1 done); every 2nd fires.
        total_hits = sum(result.report().values())
        assert total_hits == 5

    def test_every_one_is_identity(self):
        monitor = sampled(LabelCounterMonitor(), every=1)
        result = run_monitored(strict, LOOP, monitor)
        assert result.report() == {"tick": 10, "done": 1}

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            sampled(LabelCounterMonitor(), every=0)


class TestBounded:
    def test_budget_respected(self):
        monitor = bounded(LabelCounterMonitor(), budget=3)
        result = run_monitored(strict, LOOP, monitor)
        assert sum(result.report().values()) == 3

    def test_zero_budget(self):
        monitor = bounded(LabelCounterMonitor(), budget=0)
        result = run_monitored(strict, LOOP, monitor)
        assert result.report() == {}

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            bounded(LabelCounterMonitor(), budget=-1)

    def test_nested_pre_post_pairing(self):
        # Budget cuts in the middle of nested activations; the stepper's
        # depth bookkeeping must survive because gating decisions are
        # remembered per activation.
        nested = parse(
            "letrec f = lambda n. if n = 0 then 0 else {call}: (f (n - 1)) in f 5"
        )
        monitor = bounded(StepperMonitor(), budget=2)
        result = run_monitored(strict, nested, monitor)
        events = monitor.base.events(monitor.base_state_of(result.state_of(monitor)))
        kinds = [e.kind for e in events]
        # Activations nest; only the two outermost fire, and their exits
        # pair correctly even though inner activations were gated off.
        assert kinds == ["enter", "enter", "exit", "exit"]


class TestMappedAndRenamed:
    def test_mapped_report(self):
        monitor = mapped_report(
            ProfilerMonitor(), lambda report: sum(report.values())
        )
        program = parse("letrec f = lambda n. {f}: n in f 1 + f 2")
        result = run_monitored(strict, program, monitor)
        assert result.report() == 2

    def test_renamed_key(self):
        monitor = renamed(ProfilerMonitor(), "profile-copy")
        program = parse("letrec f = lambda n. {f}: n in f 1")
        result = run_monitored(strict, program, monitor)
        assert result.report("profile-copy") == {"f": 1}

    def test_soundness_preserved(self):
        monitor = sampled(bounded(LabelCounterMonitor(), budget=5), every=2)
        result = run_monitored(strict, LOOP, monitor)
        assert result.answer == 0


class TestValidation:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: filtered(LabelCounterMonitor(), lambda a: True),
            lambda: sampled(LabelCounterMonitor(), every=3),
            lambda: bounded(LabelCounterMonitor(), budget=2),
            lambda: mapped_report(ProfilerMonitor(), dict),
        ],
        ids=["filtered", "sampled", "bounded", "mapped"],
    )
    def test_transformed_monitors_validate(self, make):
        assert validate_monitor(make()) == []
