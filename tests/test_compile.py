"""Tests for level-2 specialization via the closure compiler."""

import pytest

from repro.errors import EvalError, MonitorError, NotAFunctionError
from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import (
    CollectingMonitor,
    LabelCounterMonitor,
    ProfilerMonitor,
    TracerMonitor,
    UnsortedListDemon,
)
from repro.partial_eval.compile import compile_program
from repro.syntax.parser import parse


class TestStandardCompilation:
    def test_corpus_parity(self, corpus_case):
        program, expected = corpus_case
        compiled = compile_program(program)
        assert compiled.evaluate() == expected

    def test_deep_recursion_still_safe(self):
        program = parse(
            "letrec f = lambda n. if n = 0 then 0 else f (n - 1) in f 100000"
        )
        assert compile_program(program).evaluate() == 0

    def test_shadowed_primitive_not_inlined(self):
        program = parse("let hd = lambda x. 99 in hd [1]")
        assert compile_program(program).evaluate() == 99

    def test_shadowed_operator_not_inlined(self):
        # Rebinding + must defeat the static primitive dispatch.
        program = parse("(lambda f. f 2 3) (lambda a. lambda b. a * b)")
        assert compile_program(program).evaluate() == 6

    def test_errors_preserved(self):
        with pytest.raises(EvalError):
            compile_program(parse("hd []")).evaluate()

    def test_apply_non_function(self):
        with pytest.raises(NotAFunctionError):
            compile_program(parse("1 2")).evaluate()

    def test_unbound_variable_fails_at_compile_time(self):
        # Environment search is static, so unbound names surface during
        # specialization rather than at run time.
        with pytest.raises(EvalError):
            compile_program(parse("nosuch"))


class TestInstrumentedCompilation:
    PAPER = parse(
        """
        letrec mul = lambda x. lambda y. {mul}:(x*y) in
        letrec fac = lambda x. {fac}:if (x=0) then 1 else mul x (fac (x-1))
        in fac 3
        """
    )

    def test_profiler_parity(self):
        compiled = compile_program(self.PAPER, ProfilerMonitor())
        answer, states = compiled.run()
        interp = run_monitored(strict, self.PAPER, ProfilerMonitor())
        assert answer == interp.answer
        assert states.get("profile") == interp.state_of("profile")

    def test_tracer_parity(self, paper_tracer_program):
        monitor = TracerMonitor()
        compiled = compile_program(paper_tracer_program, monitor)
        interp = run_monitored(strict, paper_tracer_program, TracerMonitor())
        assert compiled.report(monitor) == interp.report()

    def test_collecting_parity(self, paper_collecting_program):
        monitor = CollectingMonitor()
        compiled = compile_program(paper_collecting_program, monitor)
        interp = run_monitored(strict, paper_collecting_program, CollectingMonitor())
        assert monitor.report(compiled.run()[1].get("collect")) == interp.report()

    def test_demon_parity(self, paper_demon_program):
        monitor = UnsortedListDemon()
        compiled = compile_program(paper_demon_program, monitor)
        assert compiled.report(monitor) == frozenset({"l1", "l3"})

    def test_site_counts(self):
        compiled = compile_program(self.PAPER, ProfilerMonitor())
        assert compiled.instrumented_sites == 2
        assert compiled.erased_sites == 0

    def test_unrecognized_annotations_erased(self):
        program = parse("{f(x)}: ({p}: 1)")
        compiled = compile_program(program, LabelCounterMonitor())
        assert compiled.instrumented_sites == 1  # {p}
        assert compiled.erased_sites == 1  # {f(x)} — tracer syntax, no tracer

    def test_stack_compilation(self):
        program = parse("{p}: ({f(x)}: 2)")
        stack = [LabelCounterMonitor(), TracerMonitor()]
        compiled = compile_program(program, stack)
        answer, states = compiled.run()
        assert answer == 2
        assert states.get("count") == {"p": 1}

    def test_disjointness_enforced(self):
        program = parse("{p}: 1")
        with pytest.raises(MonitorError):
            compile_program(
                program,
                [LabelCounterMonitor(key="a"), LabelCounterMonitor(key="b")],
            )


class TestCompiledContext:
    def test_monitor_sees_variables(self):
        seen = {}

        from repro.monitoring.spec import FunctionSpec
        from repro.syntax.annotations import Label

        spy = FunctionSpec(
            key="spy",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            pre=lambda ann, term, ctx, st: (
                seen.update({"x": ctx.lookup("x"), "names": ctx.names()}),
                st,
            )[1],
        )
        program = parse("(lambda x. {p}: x) 5")
        compile_program(program, spy).run()
        assert seen["x"] == 5
        assert "x" in seen["names"]

    def test_letrec_visible_to_monitor(self):
        from repro.monitoring.spec import FunctionSpec
        from repro.syntax.annotations import Label

        seen = []
        spy = FunctionSpec(
            key="spy",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            pre=lambda ann, term, ctx, st: (seen.append(ctx.maybe_lookup("f")), st)[1],
        )
        program = parse("letrec f = lambda n. {p}: n in f 1")
        compile_program(program, spy).run()
        assert seen[0] is not None  # the closure itself is visible
