"""End-to-end integration tests: realistic workloads through the full stack."""

import pytest

from repro.languages import lazy, strict
from repro.monitoring.derive import run_monitored
from repro.monitoring.soundness import assert_sound
from repro.monitors import (
    CollectingMonitor,
    CoverageMonitor,
    ProfilerMonitor,
    TracerMonitor,
    UnsortedListDemon,
)
from repro.partial_eval.codegen import generate_program
from repro.partial_eval.compile import compile_program
from repro.partial_eval.online import specialize
from repro.syntax.ast import Const
from repro.syntax.parser import parse
from repro.syntax.transform import substitute
from repro.toolbox import Session

MERGESORT = """
letrec merge = lambda xs. lambda ys.
    {merge}: if xs = [] then ys
    else if ys = [] then xs
    else if (hd xs) <= (hd ys) then (hd xs) :: (merge (tl xs) ys)
    else (hd ys) :: (merge xs (tl ys))
and take = lambda n. lambda l.
    if n = 0 then [] else (hd l) :: (take (n - 1) (tl l))
and drop = lambda n. lambda l.
    if n = 0 then l else drop (n - 1) (tl l)
and sort = lambda l.
    {sort}: if length l <= 1 then l
    else merge (sort (take (length l / 2) l))
               (sort (drop (length l / 2) l))
in sort [5, 3, 8, 1, 9, 2, 7]
"""


class TestMergesort:
    def test_sorts(self):
        from repro.semantics.values import to_python_list

        answer = strict.evaluate(parse(MERGESORT))
        assert to_python_list(answer) == [1, 2, 3, 5, 7, 8, 9]

    def test_profile_call_counts(self):
        result = run_monitored(strict, parse(MERGESORT), ProfilerMonitor())
        report = result.report()
        assert report["sort"] == 13  # 7 leaves + 6 internal merges
        assert report["merge"] > 0

    def test_all_paths_compute_same_profile(self):
        program = parse(MERGESORT)
        interp = run_monitored(strict, program, ProfilerMonitor())
        compiled = compile_program(program, ProfilerMonitor())
        generated = generate_program(program, ProfilerMonitor())
        assert compiled.report("profile") == interp.report()
        assert generated.report("profile") == interp.report()

    def test_demon_on_intermediate_results(self):
        # sort results are always sorted: the demon must stay silent.
        result = run_monitored(strict, parse(MERGESORT), UnsortedListDemon())
        assert "sort" not in result.report()


class TestChurchEncodings:
    """Higher-order stress: Church numerals through the monitored machine."""

    PROGRAM = """
    let zero = lambda f. lambda x. x in
    let succ = lambda n. lambda f. lambda x. f (n f x) in
    let plus = lambda m. lambda n. lambda f. lambda x. m f (n f x) in
    let toInt = lambda n. n (lambda k. k + 1) 0 in
    let three = succ (succ (succ zero)) in
    toInt ({church}: (plus three three))
    """

    def test_evaluates(self):
        assert strict.evaluate(parse(self.PROGRAM)) == 6

    def test_monitored_function_value(self):
        result = run_monitored(strict, parse(self.PROGRAM), CollectingMonitor())
        # The collected value is a function (a Church numeral).
        values = result.report()["church"]
        assert len(values) == 1

    def test_lazy_agrees(self):
        assert lazy.evaluate(parse(self.PROGRAM)) == 6


class TestFullPipeline:
    def test_specialize_then_compile_then_run_monitored(self):
        program = parse(
            "letrec pow = lambda n. lambda x. "
            "{pow}: if n = 0 then 1 else x * (pow (n - 1) x) in pow 3 y"
        )
        residual = specialize(program).residual
        closed = substitute(residual, {"y": Const(5)})
        interp = run_monitored(strict, closed, ProfilerMonitor())
        generated = generate_program(closed, ProfilerMonitor())
        assert interp.answer == 125
        assert generated.report("profile") == interp.report()

    def test_session_full_workflow(self):
        session = Session()
        session.define(
            "fib", "lambda n. if n < 2 then n else fib (n - 1) + fib (n - 2)"
        )
        result = session.evaluate("fib 10", tools="profile & trace & step")
        assert result.answer == 55
        assert result.report("profile") == {"fib": 177}
        assert result.report("trace").count("receives") == 177

    def test_soundness_of_everything_at_once(self):
        program = parse(MERGESORT)
        stack = [
            ProfilerMonitor(),
            UnsortedListDemon(namespace="demon"),
            CoverageMonitor(namespace="cover"),
        ]
        result = assert_sound(strict, program, stack)
        assert result.report("profile")["sort"] == 13


class TestBigWorkloads:
    def test_tak(self):
        program = parse(
            """
            letrec tak = lambda x. lambda y. lambda z.
                if y < x
                then tak (tak (x - 1) y z) (tak (y - 1) z x) (tak (z - 1) x y)
                else z
            in tak 12 8 4
            """
        )
        expected = strict.evaluate(program)
        assert compile_program(program).evaluate() == expected
        assert generate_program(program).evaluate() == expected

    def test_deep_monitored_recursion(self):
        program = parse(
            "letrec f = lambda n. {f}: if n = 0 then 0 else f (n - 1) in f 30000"
        )
        result = run_monitored(strict, program, ProfilerMonitor())
        assert result.report() == {"f": 30001}
