"""Tests for the online partial evaluator (level-3 specialization)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecializationError
from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import LabelCounterMonitor, ProfilerMonitor
from repro.partial_eval.online import specialize
from repro.syntax.ast import Annotated, App, Const, If, Letrec, Var, node_count
from repro.syntax.parser import parse
from repro.syntax.pretty import pretty
from repro.syntax.transform import free_variables, substitute

from tests.generators import closed_program

POW = (
    "letrec pow = lambda n. lambda x. "
    "if n = 0 then 1 else x * (pow (n - 1) x) in pow {n} x"
)
FAC = "letrec fac = lambda x. if x = 0 then 1 else x * fac (x - 1) in fac {arg}"


class TestConstantFolding:
    def test_closed_arith_folds_completely(self):
        result = specialize(parse("1 + 2 * 3"))
        assert result.residual == Const(7)
        # Every primitive application folds, including the curried partial
        # applications: (+) 1, (*) 2, ((*) 2) 3, ((+) 1) 6.
        assert result.stats.folded == 4

    def test_static_conditional_selects_branch(self):
        result = specialize(parse("if 1 < 2 then 10 else oops"))
        assert result.residual == Const(10)

    def test_fully_static_recursion_evaluates(self):
        result = specialize(parse(FAC.format(arg=6)))
        assert result.residual == Const(720)

    def test_dynamic_input_stays_free(self):
        result = specialize(parse("x + 1"))
        assert result.residual == parse("x + 1")

    def test_static_env_input(self):
        result = specialize(parse("x + y"), static={"x": 40})
        assert result.residual == parse("40 + y")
        # (the addition can't fold: y is dynamic)

    def test_folding_error_residualized(self):
        # 1/0 would raise; the PE must leave it in the program.
        result = specialize(parse("if b then 1 / 0 else 2"))
        assert isinstance(result.residual, If)


class TestUnfolding:
    def test_pow_unrolls(self):
        result = specialize(parse(POW.format(n=3)))
        assert pretty(result.residual) == "x * (x * (x * 1))"

    def test_non_recursive_beta(self):
        result = specialize(parse("(lambda a. a + a) (y + 1)"))
        # Dynamic argument is let-bound, evaluated once.
        assert pretty(result.residual) == "let a_0 = y + 1 in a_0 + a_0"

    def test_atomic_dynamic_arg_substituted(self):
        result = specialize(parse("(lambda a. a + a) y"))
        assert result.residual == parse("y + y")

    def test_unused_dynamic_arg_still_evaluated(self):
        # CBV: dropping the argument would change termination/errors.
        result = specialize(parse("(lambda a. 7) (f y)"))
        assert pretty(result.residual).startswith("let a_0 = f y in")


class TestFunctionSpecialization:
    def test_dynamic_recursion_produces_letrec(self):
        result = specialize(parse(FAC.format(arg="y")))
        assert isinstance(result.residual, Letrec)
        assert result.stats.specialized_functions == 1

    def test_memo_reuses_specialization(self):
        program = parse(
            "letrec f = lambda x. if x = 0 then 0 else f (x - 1) in f y + f z"
        )
        result = specialize(program)
        assert result.stats.specialized_functions == 1

    def test_different_static_configs_specialize_separately(self):
        program = parse(
            "letrec pow = lambda n. lambda x. if n = 0 then 1 else x * (pow (n - 1) x) in "
            "(pow 2 y) + (pow 2 z)"
        )
        result = specialize(program)
        # Full unfold (static exponent): no residual functions at all.
        assert result.stats.specialized_functions == 0
        assert pretty(result.residual) == "y * (y * 1) + z * (z * 1)"

    def test_static_loop_becomes_residual_function(self):
        # `loop 1` repeats the same static call: must residualize, not hang.
        program = parse(
            "letrec loop = lambda x. loop x in if d then 0 else loop 1"
        )
        result = specialize(program)
        assert isinstance(result.residual, Letrec)


class TestEquivalence:
    @pytest.mark.parametrize("y", [0, 1, 3, 7])
    def test_fac_residual_equivalent(self, y):
        program = parse(FAC.format(arg="y"))
        residual = specialize(program).residual
        original = strict.evaluate(substitute(program, {"y": Const(y)}))
        specialized = strict.evaluate(substitute(residual, {"y": Const(y)}))
        assert original == specialized

    @pytest.mark.parametrize("x", [-2, 0, 5])
    def test_pow_residual_equivalent(self, x):
        program = parse(POW.format(n=4))
        residual = specialize(program).residual
        original = strict.evaluate(substitute(program, {"x": Const(x)}))
        specialized = strict.evaluate(substitute(residual, {"x": Const(x)}))
        assert original == specialized

    def test_list_program(self):
        program = parse(
            "letrec sum = lambda l. if l = [] then 0 else (hd l) + sum (tl l) "
            "in sum (y :: [2, 3])"
        )
        residual = specialize(program).residual
        for y in (0, 10):
            original = strict.evaluate(substitute(program, {"y": Const(y)}))
            specialized = strict.evaluate(substitute(residual, {"y": Const(y)}))
            assert original == specialized


class TestAnnotationPreservation:
    def test_annotations_survive(self):
        program = parse("letrec f = lambda x. {f}: x in f y")
        residual = specialize(program).residual
        assert any(
            isinstance(node, Annotated) for node in residual.walk()
        )

    def test_monitoring_parity_static_run(self):
        program = parse(
            "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac 3"
        )
        residual = specialize(program).residual
        original = run_monitored(strict, program, ProfilerMonitor())
        specialized = run_monitored(strict, residual, ProfilerMonitor())
        assert original.answer == specialized.answer
        assert original.report() == specialized.report()

    def test_monitoring_parity_dynamic_run(self):
        program = parse(
            "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac y"
        )
        residual = specialize(program).residual
        for y in (0, 4):
            original = run_monitored(
                strict, substitute(program, {"y": Const(y)}), ProfilerMonitor()
            )
            specialized = run_monitored(
                strict, substitute(residual, {"y": Const(y)}), ProfilerMonitor()
            )
            assert original.answer == specialized.answer
            assert original.report() == specialized.report()

    def test_stats_counts_annotations(self):
        program = parse("{a}: 1 + {b}: 2")
        assert specialize(program).stats.annotations_preserved == 2


class TestBudget:
    def test_divergent_static_computation_raises(self):
        program = parse(
            "letrec grow = lambda x. grow (x + 1) in if d then 0 else grow 0"
        )
        with pytest.raises(SpecializationError):
            specialize(program, budget=5_000)

    def test_budget_error_message(self):
        with pytest.raises(SpecializationError) as exc:
            specialize(
                parse("letrec g = lambda x. g (x + 1) in if d then 1 else g 0"),
                budget=1_000,
            )
        assert "budget" in str(exc.value)


@settings(max_examples=80, deadline=None)
@given(closed_program())
def test_pe_preserves_answers_on_random_programs(program):
    """Residual of a closed program computes the same answer."""
    try:
        residual = specialize(program, budget=500_000).residual
    except SpecializationError:
        return  # budget hit: allowed, just not wrong
    original = strict.evaluate(program, max_steps=2_000_000)
    specialized = strict.evaluate(residual, max_steps=2_000_000)
    assert original == specialized


@settings(max_examples=50, deadline=None)
@given(closed_program(), st.integers(0, 6))
def test_pe_open_program_equivalence(program, y):
    """Wrap the generated program as a function of a dynamic input."""
    from repro.syntax.ast import Lam

    open_program = App(Lam("dyninput", App(App(Var("+"), program), Var("dyninput"))), Var("y"))
    # open_program: (\d. program + d) y  — only meaningful for int programs.
    try:
        answer = strict.evaluate(substitute(open_program, {"y": Const(y)}), max_steps=2_000_000)
    except Exception:
        return  # boolean-valued generated programs: + fails; skip
    try:
        residual = specialize(open_program, budget=500_000).residual
    except SpecializationError:
        return
    specialized = strict.evaluate(substitute(residual, {"y": Const(y)}), max_steps=2_000_000)
    assert answer == specialized
