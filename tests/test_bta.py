"""Tests for the binding-time analysis."""

from repro.partial_eval.bta import DYNAMIC, STATIC, analyze_binding_times, join
from repro.syntax.ast import Annotated, App, Const, If, Var
from repro.syntax.parser import parse


def bta(source, static=None):
    return analyze_binding_times(parse(source), static_inputs=static)


class TestLattice:
    def test_join(self):
        assert join(STATIC, STATIC) == STATIC
        assert join(STATIC, DYNAMIC) == DYNAMIC
        assert join(DYNAMIC, DYNAMIC) == DYNAMIC
        assert join() == STATIC


class TestBasics:
    def test_constant_static(self):
        result = bta("42")
        assert result.of(result.program) == STATIC

    def test_free_variable_dynamic(self):
        result = bta("x")
        assert result.of(result.program) == DYNAMIC

    def test_declared_static_input(self):
        result = bta("x", static={"x"})
        assert result.of(result.program) == STATIC

    def test_primitive_application(self):
        result = bta("1 + 2")
        assert result.of(result.program) == STATIC

    def test_mixed_application_dynamic(self):
        result = bta("1 + x")
        assert result.of(result.program) == DYNAMIC

    def test_annotation_dynamic(self):
        result = bta("{p}: 1")
        assert result.of(result.program) == DYNAMIC

    def test_static_conditional(self):
        result = bta("if 1 < 2 then 3 else 4")
        assert result.of(result.program) == STATIC

    def test_dynamic_condition_infects(self):
        result = bta("if x < 2 then 3 else 4")
        assert result.of(result.program) == DYNAMIC


class TestBindings:
    def test_let_propagates(self):
        result = bta("let a = x in a + 1")
        assert result.of(result.program) == DYNAMIC

    def test_let_static(self):
        result = bta("let a = 1 in a + 1")
        assert result.of(result.program) == STATIC

    def test_recursive_function_static_call(self):
        result = bta(
            "letrec f = lambda n. if n = 0 then 0 else f (n - 1) in f 3"
        )
        assert result.of(result.program) == STATIC

    def test_recursive_function_dynamic_call(self):
        result = bta(
            "letrec f = lambda n. if n = 0 then 0 else f (n - 1) in f y"
        )
        assert result.of(result.program) == DYNAMIC

    def test_escaping_function(self):
        result = bta(
            "letrec f = lambda n. n "
            "and apply = lambda g. g 1 "
            "in apply f"
        )
        assert "f" in result.escaped_functions


class TestConservativeness:
    """Everything BTA calls static, the online specializer folds."""

    def test_containment_on_pow(self):
        from repro.partial_eval.online import specialize
        from repro.syntax.ast import Const as C

        source = (
            "letrec pow = lambda n. lambda x. "
            "if n = 0 then 1 else x * (pow (n - 1) x) in pow 3 x"
        )
        result = bta(source)
        if result.of(result.program) == STATIC:
            residual = specialize(parse(source)).residual
            assert isinstance(residual, C)

    def test_static_program_folds(self):
        from repro.partial_eval.online import specialize
        from repro.syntax.ast import Const as C

        for source in ("1 + 2", "if true then 1 else 2", "min 3 9 * 2"):
            result = bta(source)
            assert result.of(result.program) == STATIC
            assert isinstance(specialize(parse(source)).residual, C)


class TestStaticFraction:
    def test_all_static(self):
        assert bta("1 + 2").static_fraction() == 1.0

    def test_partially_dynamic(self):
        fraction = bta("x + (1 + 2)").static_fraction()
        assert 0 < fraction < 1

    def test_the_papers_point(self):
        # "the tracer ... has static environment lookup but dynamic stream
        # operations": annotated sites are dynamic, the arithmetic around
        # them can still be static.
        result = bta("{site}: 1 + (2 * 3)")
        assert result.static_fraction() < 1.0
        assert result.of(result.program) == DYNAMIC
