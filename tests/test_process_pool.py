"""The process pool: parity with the oracle, crashes, backpressure.

The multi-core serving tier (ISSUE PR 7 tentpole) must be invisible in
the answers: routing by program fingerprint, per-worker caches and the
process boundary may change *where* a request runs, never *what* it
returns — the soundness theorem (Section 7) is what licenses the
sharding.  Beyond parity, the pool owes its callers the operational
guarantees a daemon is built on: a dead worker fails every request it
had accepted (running or queued — no future ever hangs) and is
replaced; a full queue is an explicit :class:`OverloadedError`, never a
silent drop; a bad record fails its own slot with a diagnostic result;
a record's config keys overlay the pool's config instead of shedding
its lint gate and timeout.
"""

import json
import os
import signal
import time

import pytest

from repro.errors import ReproError
from repro.monitoring.faults import FlakyMonitor
from repro.monitors import ProfilerMonitor
from repro.observability import read_events, replay
from repro.runtime import (
    OverloadedError,
    ProcessPoolRunner,
    RunConfig,
    RunRequest,
    RunResult,
    Runtime,
    route_key,
)
from repro.runtime.process_pool import request_from_wire, request_to_wire
from repro.toolbox.registry import evaluate

FAC = "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac %d"
TRACE_FIB = (
    "letrec fib = lambda n. {trace: fib}: "
    "if n < 2 then n else fib (n - 1) + fib (n - 2) in fib %d"
)
PLAIN = "let f = lambda x. x * x in f %d"
LOOP = "letrec loop = lambda x. loop (x + 1) in loop 0"


def _oracle(request):
    """One request through the plain single-run pipeline (no pool).

    Answers and reports are passed through the batch renderer because
    pool results are *rendered* projections — they crossed the process
    boundary as JSON (tuples come back as lists, values as strings).
    """
    from repro.runtime.batch import _render_value

    cfg = request.config if request.config is not None else RunConfig()
    outcome = evaluate(
        request.tools, request.program, language=request.language, config=cfg
    )
    reports = (
        {k: _render_value(v) for k, v in outcome.monitored.reports().items()}
        if outcome.monitored is not None
        else {}
    )
    faults = (
        tuple(
            (f.monitor_key, f.phase, f.error_type, f.message)
            for f in outcome.monitored.faults
        )
        if outcome.monitored is not None
        else ()
    )
    return outcome.answer, reports, faults


def _mixed_requests():
    """Mixed programs, tools and all three engines — the parity workload."""
    requests = []
    for engine in ("reference", "compiled", "codegen"):
        for n in range(4):
            requests.append(
                RunRequest(program=PLAIN % n, config=RunConfig(engine=engine))
            )
        requests.append(
            RunRequest(
                program=FAC % 6, tools="profile", config=RunConfig(engine=engine)
            )
        )
    requests.append(RunRequest(program=TRACE_FIB % 5, tools="trace", tag="traced"))
    requests.append(
        RunRequest(
            program=FAC % 5,
            tools=FlakyMonitor(ProfilerMonitor(), fail_on=2),
            config=RunConfig(engine="compiled", fault_policy="quarantine"),
        )
    )
    return requests


@pytest.fixture(scope="module")
def pool():
    """One warm two-worker pool shared by the read-only tests."""
    with ProcessPoolRunner(workers=2) as runner:
        yield runner


class TestWireFormat:
    def test_route_key_is_deterministic(self):
        assert route_key(FAC % 3) == route_key(FAC % 3)
        assert route_key(FAC % 3) != route_key(FAC % 4)

    def test_request_round_trips_the_boundary(self):
        request = RunRequest(
            program=FAC % 2,
            tools="profile",
            config=RunConfig(engine="compiled", max_steps=5000),
            timeout=2.0,
            tag="wire",
        )
        wire = request_to_wire(request, request_id=7, index=3)
        json.dumps({k: v for k, v in wire.items() if k != "config"})
        rebuilt = request_from_wire(wire)
        assert rebuilt.program == request.program
        assert rebuilt.tools == "profile"
        assert rebuilt.config.engine == "compiled"
        assert rebuilt.config.max_steps == 5000
        assert rebuilt.timeout == 2.0
        assert rebuilt.tag == "wire"

    def test_unpicklable_tools_rejected_at_admission(self):
        request = RunRequest(program=PLAIN % 1, tools=(lambda state: state,))
        with pytest.raises(ValueError, match="process boundary"):
            request_to_wire(request, request_id=1, index=0)


class TestRunResultRoundTrip:
    def test_ok_result_round_trips(self):
        result = RunResult(
            index=2,
            ok=True,
            tag="t",
            answer=42,
            reports={"profile": {"fac": 5}},
            faults=(("flaky", "post", "RuntimeError", "boom"),),
            duration=0.25,
        )
        back = RunResult.from_dict(result.to_dict())
        assert (back.index, back.ok, back.tag, back.answer) == (2, True, "t", 42)
        assert back.reports == result.reports
        assert back.faults == result.faults
        assert back.duration == 0.25

    def test_error_result_round_trips(self):
        result = RunResult(
            index=0,
            ok=False,
            error="took too long",
            error_type="EvaluationTimeout",
            timed_out=True,
            duration=0.5,
        )
        back = RunResult.from_dict(result.to_dict())
        assert back.ok is False
        assert back.error_type == "EvaluationTimeout"
        assert back.timed_out is True
        assert back.duration == 0.5


class TestPoolParity:
    def test_mixed_requests_match_sequential_oracle(self, pool):
        """The acceptance criterion: pool == oracle on all three engines."""
        requests = _mixed_requests()
        expected = [_oracle(request) for request in requests]
        results = pool.run(requests)
        assert len(results) == len(requests)
        for request, result, (answer, reports, faults) in zip(
            requests, results, expected
        ):
            assert result.ok, result.error
            assert result.answer == answer
            assert result.reports == reports
            assert result.faults == faults
            assert result.tag == request.tag

    def test_results_in_submission_order(self, pool):
        results = pool.run([RunRequest(program=PLAIN % n) for n in range(12)])
        assert [result.index for result in results] == list(range(12))
        assert [result.answer for result in results] == [n * n for n in range(12)]

    def test_one_failure_does_not_contaminate_others(self, pool):
        results = pool.run(
            [
                RunRequest(program=PLAIN % 2),
                RunRequest(program="let oops = in"),
                RunRequest(program=PLAIN % 3),
            ]
        )
        assert [result.ok for result in results] == [True, False, True]
        assert results[1].error_type == "ParseError"

    def test_repeated_program_routes_to_one_worker(self, pool):
        shard = int(route_key(FAC % 4)[:8], 16) % pool.workers
        futures = [pool.submit(RunRequest(program=FAC % 4)) for _ in range(6)]
        assert all(future.result().answer == 24 for future in futures)
        assert shard == int(route_key(FAC % 4)[:8], 16) % pool.workers


class TestAdmissionAndTimeouts:
    def test_invalid_timeout_fails_its_slot(self, pool):
        """The historical bypass: ``"timeout": 0`` must be a clean rejection."""
        results = pool.run(
            [
                {"program": PLAIN % 1, "timeout": 0},
                {"program": PLAIN % 2, "timeout": -3},
                {"program": PLAIN % 3, "timeout": "fast"},
                {"program": PLAIN % 4},
            ]
        )
        for result in results[:3]:
            assert result.ok is False
            assert result.error_type == "ValueError"
        assert "positive" in results[0].error
        assert "number" in results[2].error
        assert results[3].ok and results[3].answer == 16

    def test_cooperative_timeout_inside_worker(self, pool):
        result = pool.run([RunRequest(program=LOOP, timeout=0.3)])[0]
        assert result.ok is False
        assert result.timed_out is True
        assert result.error_type == "EvaluationTimeout"
        assert result.duration >= 0.3

    def test_unpicklable_tools_fail_fast(self, pool):
        future = pool.submit(
            RunRequest(program=PLAIN % 1, tools=(lambda state: state,), tag="bad")
        )
        result = future.result(timeout=5)
        assert result.ok is False
        assert result.error_type == "ValueError"
        assert "process boundary" in result.error
        assert result.tag == "bad"

    def test_bad_record_fails_fast(self, pool):
        result = pool.submit({"program": PLAIN % 1, "bogus": 1}).result(timeout=5)
        assert result.ok is False
        assert "bogus" in result.error

    def test_record_config_keys_overlay_pool_config(self):
        """A record naming one config key must not shed the pool's config.

        The historical bypass: ``submit`` built a *fresh* ``RunConfig``
        from the record's keys, so ``{"max_steps": 100}`` silently turned
        the pool's ``lint="error"`` admission gate back off.
        """
        with ProcessPoolRunner(
            workers=1, config=RunConfig(lint="error")
        ) as runner:
            results = runner.run(
                [
                    {"program": "foo 1", "max_steps": 100},
                    {"program": PLAIN % 3, "max_steps": 100},
                ]
            )
        assert results[0].ok is False
        assert results[0].error_type == "StaticAnalysisError"
        assert results[1].ok and results[1].answer == 9

    def test_record_config_keys_keep_pool_timeout(self):
        """Overriding ``engine`` must not disable the pool's deadline."""
        with ProcessPoolRunner(
            workers=1, config=RunConfig(timeout=0.3)
        ) as runner:
            future = runner.submit({"program": LOOP, "engine": "reference"})
            result = future.result(timeout=15)
        assert result.ok is False
        assert result.timed_out is True
        assert result.error_type == "EvaluationTimeout"


class TestCrashRecovery:
    def test_sigkilled_worker_fails_in_flight_and_restarts(self):
        with ProcessPoolRunner(workers=2) as runner:
            future = runner.submit(
                RunRequest(program=LOOP, timeout=30.0, tag="victim")
            )
            victim_pid = None
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and victim_pid is None:
                for worker in runner._pool:
                    if worker.current is not None:
                        victim_pid = worker.process.pid
                time.sleep(0.01)
            assert victim_pid is not None, "request never reached a worker"
            os.kill(victim_pid, signal.SIGKILL)
            result = future.result(timeout=15)
            assert result.ok is False
            assert result.error_type == "WorkerCrashed"
            assert result.tag == "victim"
            # The replacement worker serves the next request.
            after = runner.run([RunRequest(program=PLAIN % 5)])[0]
            assert after.ok and after.answer == 25
            stats = runner.stats()
            assert stats["crashes"] == 1
            assert stats["restarts"] == 1

    def test_crash_resolves_queued_requests_too(self):
        """No future submitted to a dead worker may hang.

        The historical race: a worker that died after dequeuing a request
        but before its "start" ack was delivered left a request that was
        neither ``worker.current`` nor in the queue — its future never
        resolved.  Crash accounting now fails the worker's whole unacked
        set, so everything it had accepted (running *and* queued) comes
        back ``WorkerCrashed`` instead of blocking forever.
        """
        with ProcessPoolRunner(workers=1, queue_depth=8) as runner:
            blocker = runner.submit(
                RunRequest(program=LOOP, timeout=30.0, tag="running")
            )
            queued = [
                runner.submit(RunRequest(program=PLAIN % n, tag=f"queued-{n}"))
                for n in range(3)
            ]
            victim_pid = None
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and victim_pid is None:
                for worker in runner._pool:
                    if worker.current is not None:
                        victim_pid = worker.process.pid
                time.sleep(0.01)
            assert victim_pid is not None, "request never reached the worker"
            os.kill(victim_pid, signal.SIGKILL)
            results = [
                future.result(timeout=15) for future in [blocker, *queued]
            ]
            assert all(result.ok is False for result in results)
            assert {result.error_type for result in results} == {"WorkerCrashed"}
            assert "running this request" in results[0].error
            # The replacement worker keeps serving new traffic.
            after = runner.run([RunRequest(program=PLAIN % 6)])[0]
            assert after.ok and after.answer == 36
            assert runner.stats()["pending"] == 0


class TestBackpressure:
    def test_full_queue_raises_overloaded(self):
        with ProcessPoolRunner(workers=1, queue_depth=1) as runner:
            futures = []
            rejected = 0
            for _ in range(8):
                try:
                    futures.append(
                        runner.submit(
                            RunRequest(program=LOOP, timeout=0.4), block=False
                        )
                    )
                except OverloadedError as exc:
                    rejected += 1
                    assert "back off" in str(exc)
            assert rejected >= 1, "eight instant submits never filled depth-1"
            for future in futures:
                result = future.result(timeout=15)
                assert result.error_type in ("EvaluationTimeout", "PoolClosed")
            assert runner.stats()["pending"] == 0

    def test_submit_after_close_raises(self):
        runner = ProcessPoolRunner(workers=1)
        runner.start()
        runner.close()
        with pytest.raises(ReproError, match="closed"):
            runner.submit(RunRequest(program=PLAIN % 1))


class TestParentEventSink:
    def test_start_with_event_sink_does_not_deadlock(self):
        """The historical deadlock: ``start()`` emitted worker-start while
        holding the pool lock, and ``_emit`` re-acquired the same
        non-reentrant lock to bump the sequence — any pool built with a
        real ``event_sink`` hung forever once workers reported ready.
        """
        import threading

        from repro.observability.sinks import InMemorySink

        sink = InMemorySink()
        runner = ProcessPoolRunner(workers=1, event_sink=sink)
        starter = threading.Thread(target=runner.start, daemon=True)
        starter.start()
        starter.join(timeout=30)
        try:
            assert not starter.is_alive(), "start() deadlocked with event sink"
            [result] = runner.run([RunRequest(program=PLAIN % 3)])
            assert result.ok and result.answer == 9
        finally:
            runner.close()
        types = [event.type for event in sink.events]
        assert "worker-start" in types
        assert "batch-start" in types and "batch-end" in types
        assert "worker-exit" in types
        seqs = [event.seq for event in sink.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


class TestTelemetryAndPrewarm:
    def test_per_worker_traces_parse_and_replay(self, tmp_path):
        trace_dir = tmp_path / "traces"
        with ProcessPoolRunner(
            workers=2,
            trace_dir=str(trace_dir),
            prewarm=[{"program": FAC % 6, "tools": "profile"}],
        ) as runner:
            results = runner.run(
                [
                    RunRequest(program=FAC % 6, tools="profile")
                    for _ in range(4)
                ]
            )
            assert all(result.ok for result in results)
        paths = sorted(trace_dir.glob("worker-*.jsonl"))
        assert len(paths) == 2
        served = 0
        for path in paths:
            worker_id = int(path.stem.split("-")[1])
            for line in path.read_text().splitlines():
                record = json.loads(line)  # every line is whole JSON
                assert record["payload"]["worker"] == worker_id
            summary = replay(read_events(path))
            served += summary.serve_requests
        assert served == 4

    def test_startup_failure_reports_dead_worker(self, tmp_path):
        # A trace_dir pointing at a *file* makes the worker die in init.
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("occupied")
        runner = ProcessPoolRunner(workers=1, trace_dir=str(bogus / "sub"))
        with pytest.raises((ReproError, OSError)):
            runner.start()
        runner.close()


class TestRuntimeFacade:
    def test_process_executor_matches_thread_executor(self):
        requests = [
            {"program": PLAIN % n, "tools": "profile"} for n in range(6)
        ]
        with Runtime(executor="thread", workers=2) as threaded:
            thread_results = threaded.run_batch(list(requests))
        with Runtime(executor="process", workers=2) as forked:
            process_results = forked.run_batch(list(requests))
        for a, b in zip(thread_results, process_results):
            assert (a.ok, a.answer, a.reports) == (b.ok, b.answer, b.reports)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            Runtime(executor="fibers")
