"""Tests for the coverage monitor and the watch/invariant monitors."""

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import CoverageMonitor, InvariantMonitor, WatchMonitor
from repro.syntax.parser import parse


class TestCoverage:
    PROGRAM = parse(
        "letrec f = lambda n. if n = 0 then {base}: 1 else {step}: (n * f (n - 1)) "
        "in if f 3 > 0 then {pos}: 1 else {neg}: 0"
    )

    def test_hits_counted(self):
        result = run_monitored(strict, self.PROGRAM, CoverageMonitor())
        assert result.report() == {"base": 1, "step": 3, "pos": 1}

    def test_uncovered_detected(self):
        monitor = CoverageMonitor()
        result = run_monitored(strict, self.PROGRAM, monitor)
        report = monitor.report_against(result.state_of(monitor), self.PROGRAM)
        assert report.uncovered == frozenset({"neg"})
        assert report.covered == frozenset({"base", "step", "pos"})

    def test_ratio(self):
        monitor = CoverageMonitor()
        result = run_monitored(strict, self.PROGRAM, monitor)
        report = monitor.report_against(result.state_of(monitor), self.PROGRAM)
        assert report.ratio == 0.75

    def test_render(self):
        monitor = CoverageMonitor()
        result = run_monitored(strict, self.PROGRAM, monitor)
        report = monitor.report_against(result.state_of(monitor), self.PROGRAM)
        text = report.render()
        assert "coverage: 3/4" in text
        assert "neg: NEVER REACHED" in text

    def test_empty_program_full_coverage(self):
        monitor = CoverageMonitor()
        program = parse("1 + 1")
        result = run_monitored(strict, program, monitor)
        report = monitor.report_against(result.state_of(monitor), program)
        assert report.ratio == 1.0

    def test_labels_of(self):
        monitor = CoverageMonitor()
        assert monitor.labels_of(self.PROGRAM) == {"base", "step", "pos", "neg"}


class TestWatch:
    def test_changes_logged(self):
        program = parse(
            "letrec f = lambda n. {w}: if n = 0 then 0 else f (n - 1) in f 2"
        )
        result = run_monitored(strict, program, WatchMonitor(["n"]))
        log = result.report()
        values = [value for _, _, value in log]
        assert values == ["2", "1", "0"]

    def test_unchanged_values_not_relogged(self):
        program = parse(
            "letrec f = lambda n. {w}: if n = 0 then 0 else f n in f 0"
        )
        result = run_monitored(strict, program, WatchMonitor(["n"]))
        assert len(result.report()) == 1

    def test_missing_variable_skipped(self):
        program = parse("{w}: 1")
        result = run_monitored(strict, program, WatchMonitor(["ghost"]))
        assert result.report() == ()

    def test_multiple_variables(self):
        program = parse("(lambda a. (lambda b. {w}: (a + b)) 2) 1")
        result = run_monitored(strict, program, WatchMonitor(["a", "b"]))
        assert {(var, val) for _, var, val in result.report()} == {
            ("a", "1"),
            ("b", "2"),
        }


class TestInvariant:
    def test_violations_logged(self):
        monitor = InvariantMonitor(
            invariant=lambda ann, term, ctx, result: not isinstance(result, int)
            or result >= 0
        )
        program = parse("{a}: (1 - 5) + {b}: 3")
        result = run_monitored(strict, program, monitor)
        assert len(result.report()) == 1
        assert "a: violated" in result.report()[0]

    def test_no_violations(self):
        monitor = InvariantMonitor(invariant=lambda *args: True)
        result = run_monitored(strict, parse("{a}: 1"), monitor)
        assert result.report() == ()

    def test_pre_check(self):
        monitor = InvariantMonitor(
            invariant=lambda ann, term, ctx, result: result is not None,
            check_pre=True,
        )
        result = run_monitored(strict, parse("{a}: 1"), monitor)
        assert any("violated on entry" in line for line in result.report())

    def test_program_not_aborted(self):
        monitor = InvariantMonitor(invariant=lambda *args: False)
        result = run_monitored(strict, parse("{a}: (6 * 7)"), monitor)
        assert result.answer == 42
