"""The lint gate through every runtime layer.

``RunConfig.lint`` must behave identically wherever a program enters the
system: ``run_monitored``, the toolbox ``evaluate`` (both its fast path
and its monitored path), staged compilation, and batch admission.  These
tests also pin the memoized disjointness verdict
(:meth:`CompilationCache.check_disjoint`) to the legacy per-run check.
"""

import json

import pytest

from repro.analysis import StaticAnalysisError
from repro.errors import MonitorError
from repro.languages import strict
from repro.monitoring.derive import check_disjoint, disjoint_verdict, run_monitored
from repro.monitors import LabelCounterMonitor, ProfilerMonitor
from repro.runtime import CompilationCache, RunConfig, run_batch
from repro.syntax.parser import parse
from repro.toolbox import evaluate

UNBOUND = "1 + froz0"
CLEAN = "let f = lambda x. x + 1 in f 41"
WARNED = "letrec unused = lambda x. x in 42"
OVERLAP = "{p}: 1"


class TestRunConfigLint:
    def test_default_off(self):
        assert RunConfig().lint == "off"

    @pytest.mark.parametrize("level", ["off", "warn", "error"])
    def test_valid_levels(self, level):
        RunConfig(lint=level).validate()

    def test_invalid_level_rejected(self):
        with pytest.raises(Exception, match="lint"):
            RunConfig(lint="loud").validate()


class TestRunMonitoredGate:
    def test_error_rejects_before_execution(self):
        with pytest.raises(StaticAnalysisError) as info:
            run_monitored(strict, parse(UNBOUND), [], lint="error")
        assert [d.code for d in info.value.diagnostics] == ["REP101"]

    def test_error_rejects_overlapping_stack(self):
        with pytest.raises(StaticAnalysisError) as info:
            run_monitored(
                strict,
                parse(OVERLAP),
                [ProfilerMonitor(), LabelCounterMonitor()],
                lint="error",
            )
        assert "REP204" in [d.code for d in info.value.diagnostics]

    def test_warn_attaches_diagnostics_and_runs(self, capsys):
        result = run_monitored(
            strict, parse(WARNED), [ProfilerMonitor()], lint="warn"
        )
        assert result.answer == 42
        assert [d.code for d in result.diagnostics] == ["REP103"]
        assert "REP103" in capsys.readouterr().err

    def test_off_is_silent(self, capsys):
        result = run_monitored(strict, parse(WARNED), [ProfilerMonitor()])
        assert result.answer == 42
        assert result.diagnostics == ()
        assert capsys.readouterr().err == ""

    def test_clean_program_unaffected_by_error_level(self):
        result = run_monitored(
            strict, parse(CLEAN), [ProfilerMonitor()], lint="error"
        )
        assert result.answer == 42


class TestToolboxGate:
    def test_fast_path_error_rejects(self):
        # No tools, no telemetry: evaluate's direct path must still lint.
        with pytest.raises(StaticAnalysisError):
            evaluate((), UNBOUND, lint="error")

    def test_fast_path_warn_attaches(self, capsys):
        result = evaluate((), WARNED, lint="warn")
        assert result.answer == 42
        assert [d.code for d in result.diagnostics] == ["REP103"]
        capsys.readouterr()

    def test_monitored_path_error_rejects(self):
        with pytest.raises(StaticAnalysisError):
            evaluate("profile", UNBOUND, lint="error")

    def test_cached_toolless_path_lints_once(self, capsys):
        cache = CompilationCache()
        result = evaluate(
            (), WARNED, engine="compiled", lint="warn", cache=cache
        )
        assert result.answer == 42
        # Exactly one rendered report: the fast-path gate, not a second
        # one from the run_monitored delegation.
        err = capsys.readouterr().err
        assert err.count("REP103") == 1

    def test_config_object_carries_lint(self):
        config = RunConfig(lint="error")
        with pytest.raises(StaticAnalysisError):
            evaluate((), UNBOUND, config=config)


class TestCompileGate:
    def test_compile_program_error_rejects(self):
        from repro.semantics.compiled import compile_program

        with pytest.raises(StaticAnalysisError):
            compile_program(parse(UNBOUND), config=RunConfig(lint="error"))

    def test_compile_program_off_accepts(self):
        from repro.semantics.compiled import compile_program

        compiled = compile_program(parse(CLEAN), config=RunConfig(lint="off"))
        answer, _ = compiled.run()
        assert answer == 42


class TestBatchGate:
    def test_admission_rejection_with_diagnostics(self):
        results = run_batch(
            [
                {"program": UNBOUND, "tools": "profile", "lint": "error", "tag": "bad"},
                {"program": CLEAN, "tools": "profile", "lint": "error", "tag": "good"},
            ]
        )
        bad, good = results
        assert not bad.ok
        assert bad.error_type == "StaticAnalysisError"
        assert [d.code for d in bad.diagnostics] == ["REP101"]
        assert good.ok
        assert good.answer == 42

    def test_rejected_result_serializes(self):
        (result,) = run_batch(
            [{"program": UNBOUND, "lint": "error", "tag": "bad"}]
        )
        record = json.loads(json.dumps(result.to_dict()))
        assert record["ok"] is False
        assert record["error_type"] == "StaticAnalysisError"
        assert record["diagnostics"][0]["code"] == "REP101"
        assert record["diagnostics"][0]["line"] == 1
        assert record["diagnostics"][0]["column"] == 5

    def test_warn_diagnostics_ride_along(self, capsys):
        (result,) = run_batch([{"program": WARNED, "lint": "warn"}])
        assert result.ok
        record = result.to_dict()
        assert [d["code"] for d in record["diagnostics"]] == ["REP103"]
        capsys.readouterr()


class TestDisjointnessMemo:
    STACKS = [
        [],
        [ProfilerMonitor()],
        [ProfilerMonitor(), LabelCounterMonitor()],
        [ProfilerMonitor(), ProfilerMonitor()],
    ]
    PROGRAMS = ["{p}: 1", "1 + 2", "{count: p}: 1 + {q}: 2"]

    def test_verdict_matches_legacy_check(self):
        for source in self.PROGRAMS:
            program = parse(source)
            for stack in self.STACKS:
                verdict = disjoint_verdict(stack, program)
                if verdict is None:
                    check_disjoint(stack, program)  # must not raise
                else:
                    with pytest.raises(MonitorError) as info:
                        check_disjoint(stack, program)
                    assert str(info.value) == verdict

    def test_cache_matches_legacy_check(self):
        cache = CompilationCache()
        for source in self.PROGRAMS:
            program = parse(source)
            for stack in self.STACKS:
                verdict = disjoint_verdict(stack, program)
                for _ in range(2):  # cold, then warm
                    if verdict is None:
                        cache.check_disjoint(stack, program)
                    else:
                        with pytest.raises(MonitorError) as info:
                            cache.check_disjoint(stack, program)
                        assert str(info.value) == verdict

    def test_memo_hits_on_repeats(self):
        cache = CompilationCache()
        program = parse("{p}: 1")
        stack = [ProfilerMonitor()]
        for _ in range(5):
            cache.check_disjoint(stack, program)
        stats = cache.disjoint_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 4

    def test_clear_resets_memo(self):
        cache = CompilationCache()
        program = parse("1")
        cache.check_disjoint([ProfilerMonitor()], program)
        cache.clear()
        assert cache.disjoint_stats()["size"] == 0

    def test_run_monitored_uses_cache_verdict(self):
        cache = CompilationCache()
        program = parse("{p}: 1")
        stack = [ProfilerMonitor(), LabelCounterMonitor()]
        with pytest.raises(MonitorError):
            run_monitored(strict, program, stack, cache=cache)
        assert cache.disjoint_stats()["misses"] == 1
        # The second rejection replays the memoized verdict.
        with pytest.raises(MonitorError):
            run_monitored(strict, program, stack, cache=cache)
        assert cache.disjoint_stats()["hits"] == 1
