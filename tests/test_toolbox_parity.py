"""Consolidated parity battery: every toolbox monitor, every execution path.

Uses the public :mod:`repro.testing` helpers: each monitor must validate,
be sound, and produce identical reports from the tree interpreter, the
compiled program, and the residual Python program.
"""

import pytest

from repro.monitors import (
    CallGraphMonitor,
    CollectingMonitor,
    CoverageMonitor,
    HistoryMonitor,
    LabelCounterMonitor,
    PairCounterMonitor,
    ProfilerMonitor,
    StatisticsMonitor,
    StepperMonitor,
    TracerMonitor,
    UnwindMonitor,
)
from repro.testing import assert_monitor_well_behaved

#: One program exercising label, header and branch annotations with real
#: recursion, lists and branches.
PROGRAM = """
letrec mul = lambda x. lambda y. {mul(x, y)}: ({mul}: (x * y))
and fac = lambda x. {fac(x)}: ({fac}:
    (if (x = 0) then {base}: 1 else {step}: (mul x (fac (x - 1)))))
and build = lambda n. {build}: (if n = 0 then [] else n :: build (n - 1))
in fac 4 + length (build 3) + hd ({pt}: [9, 1])
"""

MONITORS = [
    PairCounterMonitor("base", "step"),
    ProfilerMonitor(),
    TracerMonitor(),
    CollectingMonitor(),
    LabelCounterMonitor(),
    CoverageMonitor(),
    StepperMonitor(),
    CallGraphMonitor(),
    HistoryMonitor(),
    StatisticsMonitor(),
    UnwindMonitor(),
]


@pytest.mark.parametrize("monitor", MONITORS, ids=lambda m: type(m).__name__)
def test_toolbox_monitor_full_battery(monitor):
    assert_monitor_well_behaved(type(monitor)() if not isinstance(
        monitor, PairCounterMonitor
    ) else PairCounterMonitor("base", "step"), PROGRAM)


def test_program_answer():
    from repro.languages import strict
    from repro.syntax.parser import parse

    # fac 4 = 24, length [3,2,1] = 3, hd [9,1] = 9.
    assert strict.evaluate(parse(PROGRAM)) == 36
