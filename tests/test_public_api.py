"""Release-sanity checks on the public API surface."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.cli",
    "repro.errors",
    "repro.languages",
    "repro.languages.exceptions",
    "repro.languages.imp_syntax",
    "repro.languages.imperative",
    "repro.languages.lazy",
    "repro.languages.strict",
    "repro.monitoring",
    "repro.monitoring.transformers",
    "repro.monitoring.validate",
    "repro.monitors",
    "repro.monitors.interactive",
    "repro.monitors.statistics",
    "repro.monitors.unwind",
    "repro.observability",
    "repro.observability.events",
    "repro.observability.instrument",
    "repro.observability.metrics",
    "repro.observability.sinks",
    "repro.partial_eval",
    "repro.partial_eval.bta",
    "repro.partial_eval.codegen",
    "repro.partial_eval.compile",
    "repro.partial_eval.exc_codegen",
    "repro.partial_eval.imp_codegen",
    "repro.partial_eval.lazy_codegen",
    "repro.partial_eval.online",
    "repro.partial_eval.postprocess",
    "repro.prelude",
    "repro.runtime",
    "repro.runtime.batch",
    "repro.runtime.cache",
    "repro.runtime.config",
    "repro.runtime.process_pool",
    "repro.runtime.serve",
    "repro.semantics",
    "repro.semantics.denotational",
    "repro.semantics.monadic",
    "repro.syntax",
    "repro.testing",
    "repro.toolbox",
]


@pytest.mark.parametrize("module_name", PACKAGES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module is not None


def test_top_level_all_resolvable():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.monitors",
        "repro.monitoring",
        "repro.languages",
        "repro.observability",
        "repro.runtime",
        "repro.syntax",
    ],
)
def test_package_all_resolvable(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"


def test_runtime_exports_at_top_level():
    """The serving runtime's facade is part of the one-import surface."""
    for name in (
        "RunConfig",
        "RunRequest",
        "RunResult",
        "Runtime",
        "BatchRunner",
        "CompilationCache",
        "run_batch",
    ):
        assert hasattr(repro, name), f"repro.{name} missing"
        assert name in repro.__all__, f"repro.__all__ misses {name!r}"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_every_module_has_docstring():
    for module_name in PACKAGES:
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
