"""``RunConfig``: the one value for every run option, on every entry point.

The consolidation contract (ISSUE PR 4):

* ``config=`` is accepted by ``run_monitored``, the toolbox ``evaluate``,
  ``Session.evaluate`` and ``compile_program``;
* legacy keyword arguments keep working unchanged;
* passing ``config`` *and* a legacy keyword explicitly changed from its
  default raises ``TypeError`` with a message naming the conflict;
* a legacy keyword left at its default is indistinguishable from "not
  passed" and never conflicts.
"""

import dataclasses

import pytest

from repro.errors import EvaluationTimeout, ReproError
from repro.languages.strict import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import ProfilerMonitor
from repro.observability import RunMetrics
from repro.runtime import RunConfig
from repro.semantics.compiled import compile_program
from repro.syntax.parser import parse
from repro.toolbox.registry import evaluate
from repro.toolbox.session import Session

FAC = "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac 4"


class TestRunConfigValue:
    def test_defaults_match_historical_keywords(self):
        cfg = RunConfig()
        assert cfg.engine == "reference"
        assert cfg.fault_policy == "propagate"
        assert cfg.max_steps is None
        assert cfg.metrics is None
        assert cfg.event_sink is None
        assert cfg.check_disjointness is True
        assert cfg.timeout is None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RunConfig().engine = "compiled"

    def test_validate_rejects_unknown_engine(self):
        with pytest.raises(ReproError, match="unknown engine"):
            RunConfig(engine="jit").validate()

    def test_validate_rejects_unknown_fault_policy(self):
        with pytest.raises(ReproError, match="fault policy"):
            RunConfig(fault_policy="retry").validate()

    def test_validate_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            RunConfig(timeout=0).validate()

    def test_resolve_rejects_non_config(self):
        with pytest.raises(TypeError, match="RunConfig"):
            RunConfig.resolve("compiled")

    def test_resolve_rejects_unknown_option(self):
        with pytest.raises(TypeError, match="unknown run option"):
            RunConfig.resolve(None, engines="compiled")

    def test_with_fresh_metrics_replaces_accumulator(self):
        shared = RunMetrics()
        cfg = RunConfig(metrics=shared)
        fresh = cfg.with_fresh_metrics()
        assert fresh.metrics is not shared
        assert isinstance(fresh.metrics, RunMetrics)
        # Metrics off: nothing to isolate, same config comes back.
        assert RunConfig().with_fresh_metrics() is not None
        assert RunConfig().with_fresh_metrics().metrics is None

    def test_deadline_tracks_timeout(self):
        assert RunConfig().deadline() is None
        assert RunConfig(timeout=5.0).deadline() is not None


class TestConfigOnEntryPoints:
    """``config=`` produces the same results as the loose keywords."""

    def test_run_monitored_accepts_config(self):
        program = parse(FAC)
        legacy = run_monitored(strict, program, ProfilerMonitor(), engine="compiled")
        via_config = run_monitored(
            strict, program, ProfilerMonitor(), config=RunConfig(engine="compiled")
        )
        assert via_config.answer == legacy.answer
        assert via_config.reports() == legacy.reports()

    def test_evaluate_accepts_config(self):
        legacy = evaluate("profile", FAC, engine="compiled")
        via_config = evaluate("profile", FAC, config=RunConfig(engine="compiled"))
        assert via_config.answer == legacy.answer
        assert via_config.reports == legacy.reports

    def test_session_evaluate_accepts_config(self):
        session = Session()
        session.define("double", "lambda x. x + x")
        legacy = session.evaluate("double 21", tools="profile", engine="compiled")
        via_config = session.evaluate(
            "double 21", tools="profile", config=RunConfig(engine="compiled")
        )
        assert via_config.answer == legacy.answer == 42
        assert via_config.reports == legacy.reports

    def test_compile_program_accepts_config(self):
        program = parse("let f = lambda x. x * 3 in f 7")
        compiled = compile_program(program, config=RunConfig(fault_policy="quarantine"))
        assert compiled.isolated
        answer, _ = compiled.run()
        assert answer == 21

    def test_timeout_flows_through_config(self):
        diverging = parse("letrec loop = lambda x. loop x in loop 1")
        with pytest.raises(EvaluationTimeout):
            run_monitored(strict, diverging, [], config=RunConfig(timeout=0.05))


class TestConfigConflicts:
    """config= plus a changed legacy keyword is a TypeError everywhere."""

    def test_run_monitored_conflict(self):
        program = parse(FAC)
        with pytest.raises(TypeError, match="conflicting legacy keyword"):
            run_monitored(
                strict,
                program,
                [],
                engine="compiled",
                config=RunConfig(engine="reference"),
            )

    def test_evaluate_conflict(self):
        with pytest.raises(TypeError, match="conflicting legacy keyword"):
            evaluate(
                (),
                "1 + 1",
                fault_policy="quarantine",
                config=RunConfig(fault_policy="log"),
            )

    def test_session_conflict(self):
        session = Session()
        with pytest.raises(TypeError, match="conflicting legacy keyword"):
            session.evaluate(
                "1 + 1", max_steps=10, config=RunConfig(max_steps=99)
            )

    def test_compile_program_conflict(self):
        program = parse("1 + 1")
        with pytest.raises(TypeError, match="config="):
            compile_program(
                program, fault_policy="quarantine", config=RunConfig()
            )

    def test_conflict_message_names_both_values(self):
        with pytest.raises(TypeError, match="engine='compiled'.*'reference'"):
            evaluate((), "1 + 1", engine="compiled", config=RunConfig())

    def test_default_valued_keyword_never_conflicts(self):
        # engine="reference" is the historical default: indistinguishable
        # from not-passed, so the config's engine simply wins.
        result = evaluate(
            (), "2 + 3", engine="reference", config=RunConfig(engine="compiled")
        )
        assert result.answer == 5

    def test_matching_keyword_never_conflicts(self):
        result = evaluate(
            (), "2 + 3", engine="compiled", config=RunConfig(engine="compiled")
        )
        assert result.answer == 5
