"""Tests for the monadic presentation (footnote 2)."""

from hypothesis import given, settings

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import CollectingMonitor, LabelCounterMonitor, ProfilerMonitor
from repro.semantics.monadic import (
    IDENTITY,
    STATE,
    run_identity,
    run_state,
    state_bind,
    state_unit,
)
from repro.syntax.parser import parse

from tests.generators import closed_program


class TestMonadLaws:
    """The state monad over MS satisfies the monad laws (on samples)."""

    def test_left_identity(self):
        fn = lambda v: state_unit(v * 2)
        assert state_bind(state_unit(21), fn)("s") == fn(21)("s")

    def test_right_identity(self):
        computation = state_unit(7)
        assert state_bind(computation, state_unit)("s") == computation("s")

    def test_associativity(self):
        f = lambda v: state_unit(v + 1)
        g = lambda v: state_unit(v * 2)
        m = state_unit(10)
        left = state_bind(state_bind(m, f), g)
        right = state_bind(m, lambda v: state_bind(f(v), g))
        assert left("s") == right("s")

    def test_unit_is_theta(self):
        # theta alpha = \sigma. (alpha, sigma) — Definition 4.1.
        assert state_unit(42)("sigma") == (42, "sigma")


class TestIdentityInterpreter:
    def test_corpus(self, corpus_case):
        program, expected = corpus_case
        assert run_identity(program) == expected


class TestStateInterpreter:
    def test_lemma_7_3_without_monitor(self, corpus_case):
        """The first projection of the lifted semantics is the standard answer."""
        program, expected = corpus_case
        answer, state = run_state(program)
        assert answer == expected
        assert state is None

    def test_profiler_agrees_with_machine(self, paper_profiler_program):
        monitor = ProfilerMonitor()
        answer, state = run_state(paper_profiler_program, monitor)
        machine = run_monitored(strict, paper_profiler_program, ProfilerMonitor())
        assert answer == machine.answer
        assert state == machine.state_of("profile")

    def test_collecting_agrees_with_machine(self, paper_collecting_program):
        monitor = CollectingMonitor()
        answer, state = run_state(paper_collecting_program, monitor)
        machine = run_monitored(strict, paper_collecting_program, CollectingMonitor())
        assert answer == machine.answer
        assert monitor.report(state) == machine.report()

    def test_unrecognized_annotations_transparent(self):
        program = parse("{f(x)}: ({p}: 2) * 3")
        answer, state = run_state(program, LabelCounterMonitor())
        assert answer == 6
        assert state == {"p": 1}


@settings(max_examples=60, deadline=None)
@given(closed_program())
def test_monadic_machine_agreement(program):
    """Identity-monad, state-monad and machine semantics all agree."""
    machine = run_monitored(
        strict, program, LabelCounterMonitor(), max_steps=2_000_000
    )
    identity_answer = run_identity(program, recursion_limit=800_000)
    state_answer, state = run_state(
        program, LabelCounterMonitor(), recursion_limit=800_000
    )
    assert identity_answer == machine.answer
    assert state_answer == machine.answer
    assert state == machine.state_of("count")


def test_monad_records():
    assert IDENTITY.name == "identity"
    assert STATE.name == "state"
    assert IDENTITY.bind(IDENTITY.unit(1), lambda v: v + 1) == 2
