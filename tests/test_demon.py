"""Figure 8: demons."""

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import PredicateDemon, UnsortedListDemon
from repro.monitors.demon import is_sorted_list
from repro.semantics.values import NIL, Cons, from_python_list
from repro.syntax.parser import parse


class TestSortedPredicate:
    def test_nil_sorted(self):
        assert is_sorted_list(NIL) is True

    def test_singleton_sorted(self):
        assert is_sorted_list(from_python_list([5])) is True

    def test_sorted(self):
        assert is_sorted_list(from_python_list([1, 2, 3])) is True

    def test_unsorted(self):
        assert is_sorted_list(from_python_list([3, 1])) is False

    def test_duplicates_sorted(self):
        assert is_sorted_list(from_python_list([1, 1, 2])) is True

    def test_non_list_is_none(self):
        assert is_sorted_list(42) is None

    def test_improper_list_is_none(self):
        assert is_sorted_list(Cons(1, 2)) is None

    def test_incomparable_elements_none(self):
        assert is_sorted_list(from_python_list([1, "a"])) is None


class TestPaperExample:
    def test_section8_result(self, paper_demon_program):
        """The paper: sigma = {l1, l3}."""
        result = run_monitored(strict, paper_demon_program, UnsortedListDemon())
        assert set(result.report()) == {"l1", "l3"}

    def test_non_list_points_ignored(self):
        program = parse("{num}: 5 + {num2}: 6")
        result = run_monitored(strict, program, UnsortedListDemon())
        assert result.report() == frozenset()

    def test_sorted_lists_not_flagged(self):
        program = parse("{ok}: [1, 2, 3]")
        result = run_monitored(strict, program, UnsortedListDemon())
        assert result.report() == frozenset()


class TestPredicateDemon:
    def test_custom_event(self):
        demon = PredicateDemon(
            predicate=lambda ann, term, ctx, result: isinstance(result, int)
            and result < 0,
        )
        program = parse("{a}: (1 - 5) + {b}: 10")
        result = run_monitored(strict, program, demon)
        assert result.report() == ("a",)

    def test_custom_action(self):
        demon = PredicateDemon(
            predicate=lambda ann, term, ctx, result: True,
            action=lambda ann, term, ctx, result: (ann.name, result),
        )
        program = parse("{x}: 1 + {y}: 2")
        result = run_monitored(strict, program, demon)
        # Figure 2 order: right operand evaluates first.
        assert result.report() == (("y", 2), ("x", 1))

    def test_event_order_preserved(self):
        demon = PredicateDemon(
            predicate=lambda ann, term, ctx, result: True,
        )
        program = parse(
            "letrec f = lambda n. if n = 0 then 0 else {tick}: f (n - 1) in f 3"
        )
        result = run_monitored(strict, program, demon)
        assert result.report() == ("tick", "tick", "tick")
