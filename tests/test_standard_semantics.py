"""Tests for the standard continuation semantics of ``L_lambda``."""

import pytest

from repro.errors import (
    EvalError,
    NotAFunctionError,
    StepLimitExceeded,
    UnboundIdentifierError,
)
from repro.languages import strict
from repro.semantics.answers import BASIC_ANSWERS, STANDARD_ANSWERS, string_answers
from repro.semantics.standard import evaluate, evaluate_with_state
from repro.semantics.values import Closure, from_python_list
from repro.syntax.parser import parse


def run(source, **kwargs):
    return evaluate(parse(source), **kwargs)


class TestCorpus:
    def test_corpus_program(self, corpus_case):
        program, expected = corpus_case
        assert strict.evaluate(program) == expected


class TestConstructs:
    def test_constant(self):
        assert run("7") == 7

    def test_lambda_returns_closure(self):
        result = run("lambda x. x")
        assert isinstance(result, Closure)

    def test_application_order_argument_first(self):
        # Figure 2 evaluates e2 before e1: if the argument raises, the
        # operator must never be evaluated.
        with pytest.raises(EvalError) as exc:
            run("(missing_function) (1 / 0)")
        assert "division" in str(exc.value)

    def test_letrec_recursion(self):
        assert run("letrec f = lambda n. if n = 0 then 0 else 2 + f (n - 1) in f 4") == 8

    def test_letrec_mutual(self):
        source = (
            "letrec even = lambda n. if n = 0 then true else odd (n - 1) "
            "and odd = lambda n. if n = 0 then false else even (n - 1) "
            "in odd 7"
        )
        assert run(source) is True

    def test_let_is_not_recursive(self):
        with pytest.raises(UnboundIdentifierError):
            run("let f = lambda n. f n in f 1")

    def test_shadowing_primitives(self):
        assert run("let hd = lambda x. 99 in hd [1]") == 99

    def test_closures_capture_lexically(self):
        source = (
            "let x = 1 in "
            "let f = lambda y. x + y in "
            "let x = 100 in f 10"
        )
        assert run(source) == 11


class TestErrors:
    def test_unbound_identifier(self):
        with pytest.raises(UnboundIdentifierError):
            run("nosuchvar")

    def test_apply_non_function(self):
        with pytest.raises(NotAFunctionError):
            run("3 4")

    def test_non_boolean_condition(self):
        with pytest.raises(EvalError):
            run("if 1 then 2 else 3")

    def test_error_inside_deep_call(self):
        with pytest.raises(EvalError):
            run("letrec f = lambda n. if n = 0 then 1 / 0 else f (n - 1) in f 50")


class TestDeepRecursion:
    def test_hundred_thousand_levels(self):
        source = "letrec f = lambda n. if n = 0 then 0 else f (n - 1) in f 100000"
        assert run(source) == 0

    def test_non_tail_recursion_also_deep(self):
        # Even non-tail recursion only uses continuation chain, not the
        # Python stack.
        source = "letrec f = lambda n. if n = 0 then 0 else 1 + f (n - 1) in f 50000"
        assert run(source) == 50000


class TestStepLimit:
    def test_divergent_program_detected(self):
        with pytest.raises(StepLimitExceeded):
            run("letrec loop = lambda x. loop x in loop 1", max_steps=10_000)

    def test_terminating_program_within_limit(self):
        assert run("1 + 1", max_steps=1000) == 2


class TestAnswerAlgebras:
    def test_standard_identity(self):
        assert run("[1, 2]") == from_python_list([1, 2])

    def test_basic_rejects_functions(self):
        with pytest.raises(EvalError):
            run("lambda x. x", answers=BASIC_ANSWERS)

    def test_basic_passes_values(self):
        assert run("41 + 1", answers=BASIC_ANSWERS) == 42

    def test_string_answers(self):
        assert run("6 * 7", answers=string_answers()) == "The result is: 42"

    def test_string_answers_custom_prefix(self):
        assert run("1", answers=string_answers("got ")) == "got 1"


class TestObliviousness:
    """Definition 7.1: the standard semantics disregards annotations."""

    def test_annotated_equals_plain(self, corpus_case):
        program, expected = corpus_case
        assert strict.evaluate(program) == expected

    def test_annotations_anywhere(self):
        assert run("{a}: ({b}: 1 + {c}: 2) * {d}: 3") == 9

    def test_monitor_state_threaded_untouched(self):
        answer, state = evaluate_with_state(parse("{p}: (1 + 1)"), initial_ms="SIGMA")
        assert answer == 2
        assert state == "SIGMA"
