"""Tests for the trampoline driver."""

import pytest

from repro.errors import StepLimitExceeded
from repro.semantics.trampoline import Bounce, Done, trampoline


def countdown(n):
    if n == 0:
        return Done("done")
    return Bounce(countdown, (n - 1,))


class TestTrampoline:
    def test_immediate_done(self):
        assert trampoline(Done(42)) == 42

    def test_bounce_chain(self):
        assert trampoline(countdown(1000)) == "done"

    def test_very_deep_chain_constant_stack(self):
        assert trampoline(countdown(1_000_000)) == "done"

    def test_step_limit_exceeded(self):
        with pytest.raises(StepLimitExceeded) as exc:
            trampoline(countdown(100), max_steps=50)
        assert exc.value.limit == 50

    def test_step_limit_sufficient(self):
        assert trampoline(countdown(100), max_steps=100) == "done"

    def test_non_step_rejected(self):
        with pytest.raises(TypeError):
            trampoline("not a step")

    def test_exception_propagates(self):
        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            trampoline(Bounce(boom, ()))

    def test_repr(self):
        assert "countdown" in repr(Bounce(countdown, (1,)))
        assert "Done" in repr(Done(1))
