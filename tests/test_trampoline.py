"""Tests for the trampoline driver."""

import pytest

from repro.errors import StepLimitExceeded
from repro.semantics.trampoline import (
    STEP_BATCH,
    Bounce,
    Done,
    KTail,
    Tail,
    trampoline,
)


def countdown(n):
    if n == 0:
        return Done("done")
    return Bounce(countdown, (n - 1,))


class TestTrampoline:
    def test_immediate_done(self):
        assert trampoline(Done(42)) == 42

    def test_bounce_chain(self):
        assert trampoline(countdown(1000)) == "done"

    def test_very_deep_chain_constant_stack(self):
        assert trampoline(countdown(1_000_000)) == "done"

    def test_step_limit_exceeded(self):
        with pytest.raises(StepLimitExceeded) as exc:
            trampoline(countdown(100), max_steps=50)
        assert exc.value.limit == 50

    def test_step_limit_sufficient(self):
        assert trampoline(countdown(100), max_steps=100) == "done"

    def test_non_step_rejected(self):
        with pytest.raises(TypeError):
            trampoline("not a step")

    def test_exception_propagates(self):
        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            trampoline(Bounce(boom, ()))

    def test_repr(self):
        assert "countdown" in repr(Bounce(countdown, (1,)))
        assert "Done" in repr(Done(1))


def tail_countdown(n, _b, _c):
    if n == 0:
        return Done("tail-done")
    return Tail(tail_countdown, n - 1, None, None)


def ktail_countdown(n, _b):
    if n == 0:
        return Done("ktail-done")
    return KTail(ktail_countdown, n - 1, None)


class TestSpecializedSteps:
    """The Tail/KTail fast-path step variants drive like Bounce."""

    def test_tail_chain(self):
        assert trampoline(Tail(tail_countdown, 10_000, None, None)) == "tail-done"

    def test_ktail_chain(self):
        assert trampoline(KTail(ktail_countdown, 10_000, None)) == "ktail-done"

    def test_mixed_chain(self):
        def switch(n):
            if n == 0:
                return Done(n)
            if n % 3 == 0:
                return Bounce(switch, (n - 1,))
            if n % 3 == 1:
                return Tail(lambda a, b, c: switch(a), n - 1, None, None)
            return KTail(lambda a, b: switch(a), n - 1, None)

        assert trampoline(switch(999)) == 0

    def test_tail_counts_against_step_limit(self):
        with pytest.raises(StepLimitExceeded):
            trampoline(Tail(tail_countdown, 100, None, None), max_steps=50)


class TestBatchedStepLimit:
    """Limits are exact even though the driver checks them in batches."""

    def test_limit_exactly_at_batch_boundary(self):
        assert trampoline(countdown(STEP_BATCH), max_steps=STEP_BATCH + 1) == "done"

    def test_limit_one_below_needed_at_boundary(self):
        with pytest.raises(StepLimitExceeded) as exc:
            trampoline(countdown(STEP_BATCH + 1), max_steps=STEP_BATCH)
        assert exc.value.limit == STEP_BATCH
        assert exc.value.consumed == STEP_BATCH

    def test_limit_spanning_multiple_batches(self):
        n = 3 * STEP_BATCH + 17
        assert trampoline(countdown(n), max_steps=n + 1) == "done"
        with pytest.raises(StepLimitExceeded) as exc:
            trampoline(countdown(n + 100), max_steps=n)
        assert exc.value.consumed == n

    def test_consumed_reported_on_small_limit(self):
        with pytest.raises(StepLimitExceeded) as exc:
            trampoline(countdown(100), max_steps=7)
        assert exc.value.limit == 7
        assert exc.value.consumed == 7
        assert "7" in str(exc.value)

    def test_consumed_defaults_to_limit(self):
        exc = StepLimitExceeded(50)
        assert exc.limit == 50
        assert exc.consumed == 50
