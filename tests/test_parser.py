"""Unit tests for the parser."""

import pytest

from repro.errors import ParseError
from repro.syntax.annotations import FnHeader, Label, Tagged
from repro.syntax.ast import (
    Annotated,
    App,
    Const,
    If,
    Lam,
    Let,
    Letrec,
    Var,
)
from repro.syntax.parser import parse


class TestAtoms:
    def test_int(self):
        assert parse("42") == Const(42)

    def test_float(self):
        assert parse("2.5") == Const(2.5)

    def test_negative_literal(self):
        assert parse("-3") == Const(-3)

    def test_bool(self):
        assert parse("true") == Const(True)
        assert parse("false") == Const(False)

    def test_string(self):
        assert parse('"hi"') == Const("hi")

    def test_identifier(self):
        assert parse("foo") == Var("foo")

    def test_parenthesized(self):
        assert parse("(42)") == Const(42)


class TestOperators:
    def test_precedence_mul_over_add(self):
        assert parse("1 + 2 * 3") == App(
            App(Var("+"), Const(1)), App(App(Var("*"), Const(2)), Const(3))
        )

    def test_left_associative_subtraction(self):
        # (10 - 3) - 2
        assert parse("10 - 3 - 2") == App(
            App(Var("-"), App(App(Var("-"), Const(10)), Const(3))), Const(2)
        )

    def test_comparison_binds_loosest_of_arith(self):
        expr = parse("1 + 2 = 3")
        assert isinstance(expr, App)
        assert expr.fn.fn == Var("=")

    def test_cons_right_associative(self):
        expr = parse("1 :: 2 :: []")
        # cons 1 (cons 2 nil)
        assert expr.fn.fn == Var("cons")
        assert expr.fn.arg == Const(1)
        assert expr.arg.fn.fn == Var("cons")

    def test_unary_minus_on_expression(self):
        assert parse("-(x)") == App(Var("neg"), Var("x"))

    def test_double_negative_folds(self):
        assert parse("- -3") == Const(3)

    def test_modulo(self):
        assert parse("7 % 2") == App(App(Var("%"), Const(7)), Const(2))

    def test_string_append(self):
        assert parse('"a" ++ "b"') == App(App(Var("++"), Const("a")), Const("b"))


class TestApplication:
    def test_simple(self):
        assert parse("f x") == App(Var("f"), Var("x"))

    def test_left_associative(self):
        assert parse("f x y") == App(App(Var("f"), Var("x")), Var("y"))

    def test_application_binds_tighter_than_operators(self):
        expr = parse("f x + 1")
        assert expr.fn.fn == Var("+")
        assert expr.fn.arg == App(Var("f"), Var("x"))

    def test_application_to_bool(self):
        assert parse("f true") == App(Var("f"), Const(True))

    def test_application_to_list(self):
        expr = parse("f []")
        assert expr == App(Var("f"), Var("nil"))


class TestLambda:
    def test_single_param(self):
        assert parse("lambda x. x") == Lam("x", Var("x"))

    def test_multi_param_curried(self):
        assert parse("lambda x y. x") == Lam("x", Lam("y", Var("x")))

    def test_body_extends_right(self):
        assert parse("lambda x. x + 1") == Lam(
            "x", App(App(Var("+"), Var("x")), Const(1))
        )

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse("lambda x x")


class TestConditional:
    def test_basic(self):
        assert parse("if true then 1 else 2") == If(Const(True), Const(1), Const(2))

    def test_nested(self):
        expr = parse("if a then 1 else if b then 2 else 3")
        assert isinstance(expr.else_branch, If)

    def test_missing_else(self):
        with pytest.raises(ParseError):
            parse("if a then 1")


class TestLetAndLetrec:
    def test_let(self):
        assert parse("let x = 1 in x") == Let("x", Const(1), Var("x"))

    def test_letrec_single(self):
        expr = parse("letrec f = lambda x. x in f 1")
        assert isinstance(expr, Letrec)
        assert expr.bindings[0][0] == "f"

    def test_letrec_multiple(self):
        expr = parse(
            "letrec f = lambda x. g x and g = lambda y. y in f 1"
        )
        assert [name for name, _ in expr.bindings] == ["f", "g"]

    def test_letrec_requires_lambda(self):
        with pytest.raises(ParseError):
            parse("letrec x = 42 in x")

    def test_letrec_annotated_lambda_allowed(self):
        expr = parse("letrec f = {warm}: lambda x. x in f 2")
        assert isinstance(expr, Letrec)
        assert isinstance(expr.bindings[0][1], Annotated)


class TestListLiterals:
    def test_empty(self):
        assert parse("[]") == Var("nil")

    def test_elements_desugar_to_cons(self):
        expr = parse("[1, 2]")
        assert expr.fn.fn == Var("cons")
        assert expr.fn.arg == Const(1)
        assert expr.arg.fn.arg == Const(2)
        assert expr.arg.arg == Var("nil")

    def test_nested_expressions(self):
        expr = parse("[1 + 1]")
        assert expr.fn.arg == App(App(Var("+"), Const(1)), Const(1))


class TestAnnotations:
    def test_label(self):
        assert parse("{p}: 1") == Annotated(Label("p"), Const(1))

    def test_header(self):
        expr = parse("{fac(x)}: 1")
        assert expr.annotation == FnHeader("fac", ("x",))

    def test_tagged(self):
        expr = parse("{trace: f(a, b)}: 1")
        assert expr.annotation == Tagged("trace", FnHeader("f", ("a", "b")))

    def test_binds_to_next_atom(self):
        # The paper's collecting example: {n}: n * e annotates just n.
        expr = parse("{n}: n * m")
        assert expr.fn.fn == Var("*")
        assert expr.fn.arg == Annotated(Label("n"), Var("n"))

    def test_swallows_if(self):
        expr = parse("{fac}: if a then 1 else 2")
        assert isinstance(expr, Annotated)
        assert isinstance(expr.body, If)

    def test_swallows_lambda(self):
        expr = parse("{f}: lambda x. x")
        assert isinstance(expr.body, Lam)

    def test_parenthesized_body(self):
        expr = parse("{B}:(x * y)")
        assert isinstance(expr, Annotated)
        assert expr.body.fn.fn == Var("*")

    def test_nested_annotations(self):
        expr = parse("{a}: {b}: 1")
        assert expr.annotation == Label("a")
        assert expr.body.annotation == Label("b")

    def test_annotated_as_argument(self):
        expr = parse("f {p}: x")
        assert expr == App(Var("f"), Annotated(Label("p"), Var("x")))

    def test_missing_colon(self):
        with pytest.raises(ParseError):
            parse("{p} 1")


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse("1 )")

    def test_empty_program(self):
        with pytest.raises(ParseError):
            parse("")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse("(1 + 2")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as exc:
            parse("let = 1 in x")
        assert exc.value.location.line == 1


class TestLocations:
    def test_nodes_carry_locations(self):
        expr = parse("foo")
        assert expr.location.line == 1
        assert expr.location.column == 1

    def test_equality_ignores_location(self):
        assert parse(" foo ") == parse("foo")
