"""Tests for L_imp residual code generation (level 2 for the imperative language)."""

import pytest

from repro.languages.imp_syntax import parse_imp
from repro.languages.imperative import imperative
from repro.monitoring.derive import run_monitored
from repro.monitoring.spec import FunctionSpec
from repro.monitors import LabelCounterMonitor
from repro.partial_eval.imp_codegen import generate_imp_program
from repro.syntax.annotations import Label

PROGRAMS = {
    "assign": "x := 1 + 2",
    "sequence": "x := 1; y := x + 1; x := y * 2",
    "if": "x := 5; if x > 3 then y := 1 else y := 2",
    "if_assigns_new": "if 1 < 2 then x := 1 else x := 2; y := x",
    "while_sum": (
        "i := 1; total := 0; "
        "while i <= 10 do begin total := total + i; i := i + 1 end"
    ),
    "while_never_runs": "while 1 > 2 do x := 1; y := 7",
    "emit": "i := 0; while i < 3 do begin emit i * i; i := i + 1 end",
    "local": "x := 1; local x = 99 in emit x; emit x",
    "local_outer_assign": "local t = 1 in begin out := t + 1 end; emit out",
    "nested": (
        "n := 5; r := 1; "
        "while n > 0 do begin "
        "  if n % 2 = 0 then r := r * 2 else r := r * 3; "
        "  n := n - 1 "
        "end"
    ),
}


@pytest.mark.parametrize("name", sorted(PROGRAMS), ids=sorted(PROGRAMS))
def test_residual_matches_interpreter(name):
    program = parse_imp(PROGRAMS[name])
    expected = imperative.run_to_store(program)
    generated = generate_imp_program(program)
    bindings, output = generated.evaluate()
    exp_bindings, exp_output = expected
    assert bindings == exp_bindings
    assert output == exp_output


class TestInstrumented:
    PROGRAM = parse_imp(
        """
        i := 3;
        while i > 0 do begin
            {tick}: i := i - 1
        end
        """
    )

    def test_monitor_state_parity(self):
        interp = run_monitored(imperative, self.PROGRAM, LabelCounterMonitor())
        generated = generate_imp_program(self.PROGRAM, LabelCounterMonitor())
        assert generated.report("count") == interp.report() == {"tick": 3}

    def test_command_post_sees_updated_store(self):
        observed = []
        spy = FunctionSpec(
            key="spy",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            post=lambda ann, term, ctx, result, st: (
                observed.append(result.lookup("i")),
                st,
            )[1],
        )
        generate_imp_program(self.PROGRAM, spy).run()
        assert observed == [2, 1, 0]

    def test_pre_sees_old_value(self):
        observed = []
        spy = FunctionSpec(
            key="spy",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            pre=lambda ann, term, ctx, st: (observed.append(ctx.lookup("i")), st)[1],
        )
        generate_imp_program(self.PROGRAM, spy).run()
        assert observed == [3, 2, 1]

    def test_annotated_expression_hooks(self):
        program = parse_imp("x := {v}: (1 + 2); emit x")
        interp = run_monitored(imperative, program, LabelCounterMonitor())
        generated = generate_imp_program(program, LabelCounterMonitor())
        assert generated.report("count") == interp.report() == {"v": 1}

    def test_source_is_python(self):
        generated = generate_imp_program(self.PROGRAM, LabelCounterMonitor())
        compile(generated.source, "<check>", "exec")
        assert "while _truth" in generated.source
        assert "_pre(" in generated.source

    def test_reruns_independent(self):
        generated = generate_imp_program(self.PROGRAM, LabelCounterMonitor())
        assert generated.report("count") == {"tick": 3}
        assert generated.report("count") == {"tick": 3}
