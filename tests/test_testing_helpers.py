"""Tests for the public testing helpers."""

import pytest

from repro.monitoring.spec import FunctionSpec
from repro.monitors import ProfilerMonitor, TracerMonitor
from repro.syntax.annotations import Label
from repro.testing import (
    ParityError,
    assert_implementation_parity,
    assert_monitor_well_behaved,
    run_and_report,
)

PROGRAM = "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac 4"


class TestParity:
    def test_passes_for_toolbox_monitor(self):
        assert_implementation_parity(PROGRAM, ProfilerMonitor())

    def test_passes_without_monitors(self):
        assert_implementation_parity("1 + 2 * 3")

    def test_accepts_parsed_programs(self):
        from repro.syntax.parser import parse

        assert_implementation_parity(parse(PROGRAM), ProfilerMonitor())

    def test_lazy_language_smoke_path(self):
        from repro.languages import lazy

        assert_implementation_parity(PROGRAM, ProfilerMonitor(), language=lazy)


class TestWellBehaved:
    @pytest.mark.parametrize(
        "monitor", [ProfilerMonitor(), TracerMonitor()], ids=lambda m: m.key
    )
    def test_toolbox_monitors(self, monitor):
        program = (
            "letrec fac = lambda x. {fac(x)}: ({fac}: "
            "(if x = 0 then 1 else x * fac (x - 1))) in fac 3"
        )
        assert_monitor_well_behaved(type(monitor)(), program)

    def test_catches_invalid_spec(self):
        from repro.errors import MonitorError

        broken = FunctionSpec(
            key="broken",
            recognize=lambda a: a.no_such_attribute,
            initial=lambda: 0,
        )
        with pytest.raises(MonitorError):
            assert_monitor_well_behaved(broken, PROGRAM)


class TestRunAndReport:
    def test_shorthand(self):
        answer, reports = run_and_report(PROGRAM, [ProfilerMonitor()])
        assert answer == 24
        assert reports["profile"] == {"fac": 5}
