"""The batch runner: parity with sequential runs, isolation, ordering.

The serving layer's central promise (ISSUE PR 4 acceptance): a
``run_batch`` over many mixed requests — different programs, tools,
engines, fault policies — produces results identical to running each
request alone through the single-run pipeline.  Concurrency, the shared
compilation cache, and per-request timeouts must all be invisible in the
answers, reports and fault records.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationTimeout
from repro.languages.strict import strict
from repro.monitoring.derive import run_monitored
from repro.monitoring.faults import FlakyMonitor
from repro.monitors import ProfilerMonitor
from repro.observability import InMemorySink, replay
from repro.runtime import (
    BatchRunner,
    CompilationCache,
    RunConfig,
    RunRequest,
    RunResult,
    Runtime,
    run_batch,
)
from repro.toolbox.registry import evaluate
from tests.generators import closed_program

FAC = "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac %d"
TRACE_FIB = (
    "letrec fib = lambda n. {trace: fib}: "
    "if n < 2 then n else fib (n - 1) + fib (n - 2) in fib %d"
)
PLAIN = "let f = lambda x. x * x in f %d"


def _mixed_requests(count):
    """``count`` requests cycling programs, tools, engines, policies."""
    requests = []
    for n in range(count):
        which = n % 5
        if which == 0:
            requests.append(
                RunRequest(program=PLAIN % n, config=RunConfig(engine="compiled"))
            )
        elif which == 1:
            requests.append(
                RunRequest(
                    program=FAC % (n % 7),
                    tools="profile",
                    config=RunConfig(engine="compiled"),
                )
            )
        elif which == 2:
            requests.append(
                RunRequest(program=TRACE_FIB % (n % 6), tools="trace", tag=f"t{n}")
            )
        elif which == 3:
            requests.append(
                RunRequest(
                    program=FAC % 5,
                    tools=FlakyMonitor(ProfilerMonitor(), fail_on=2),
                    config=RunConfig(engine="compiled", fault_policy="quarantine"),
                )
            )
        else:
            requests.append(RunRequest(program=PLAIN % n, tools="profile"))
    return requests


def _oracle(request):
    """One request through the plain single-run pipeline (no pool, no cache)."""
    cfg = request.config if request.config is not None else RunConfig()
    outcome = evaluate(
        request.tools, request.program, language=request.language, config=cfg
    )
    reports = outcome.monitored.reports() if outcome.monitored is not None else {}
    faults = (
        tuple(
            (f.monitor_key, f.phase, f.error_type, f.message)
            for f in outcome.monitored.faults
        )
        if outcome.monitored is not None
        else ()
    )
    return outcome.answer, reports, faults


class TestBatchParity:
    def test_hundred_mixed_requests_match_sequential(self):
        """The acceptance criterion: >=100 mixed requests, identical output."""
        requests = _mixed_requests(100)
        expected = [_oracle(request) for request in requests]
        results = run_batch(requests, workers=4)
        assert len(results) == 100
        for request, result, (answer, reports, faults) in zip(
            requests, results, expected
        ):
            assert result.ok, result.error
            assert result.answer == answer
            assert result.reports == reports
            assert result.faults == faults
            assert result.tag == request.tag

    def test_pooled_matches_single_worker(self):
        requests = _mixed_requests(40)
        sequential = run_batch(requests, workers=1)
        pooled = run_batch(requests, workers=8)
        for a, b in zip(sequential, pooled):
            assert (a.ok, a.answer, a.reports, a.faults) == (
                b.ok,
                b.answer,
                b.reports,
                b.faults,
            )

    @settings(max_examples=15, deadline=None)
    @given(st.lists(closed_program(), min_size=1, max_size=6))
    def test_property_batch_equals_sequential(self, programs):
        requests = [
            RunRequest(program=program, config=RunConfig(engine="compiled"))
            for program in programs
        ]
        pooled = run_batch(requests, workers=4)
        solo = [
            run_monitored(strict, program, [], engine="compiled").answer
            for program in programs
        ]
        assert [result.answer for result in pooled] == solo


class TestOrderingAndIsolation:
    def test_results_in_submission_order(self):
        requests = [RunRequest(program=PLAIN % n, tag=str(n)) for n in range(32)]
        results = run_batch(requests, workers=8)
        assert [result.index for result in results] == list(range(32))
        assert [result.tag for result in results] == [str(n) for n in range(32)]

    def test_one_failure_does_not_contaminate_others(self):
        requests = [
            RunRequest(program=PLAIN % 1),
            RunRequest(program="1 +"),          # parse error
            RunRequest(program="f 1"),          # unbound identifier
            RunRequest(program=PLAIN % 2),
        ]
        results = run_batch(requests, workers=4)
        assert [result.ok for result in results] == [True, False, False, True]
        assert results[1].error_type == "ParseError"
        assert results[2].error_type == "UnboundIdentifierError"
        assert results[0].answer == 1 and results[3].answer == 4

    def test_timeout_bounds_one_request_only(self):
        requests = [
            RunRequest(program=PLAIN % 3),
            RunRequest(
                program="letrec loop = lambda x. loop x in loop 1",
                timeout=0.1,
                config=RunConfig(engine="compiled"),
            ),
            RunRequest(program=PLAIN % 4),
        ]
        results = run_batch(requests, workers=2)
        assert results[1].ok is False and results[1].timed_out is True
        assert results[1].error_type == "EvaluationTimeout"
        assert results[0].ok and results[2].ok

    def test_metrics_are_per_request(self):
        from repro.observability import RunMetrics

        shared = RunConfig(metrics=RunMetrics())
        requests = [
            RunRequest(program=FAC % 3, tools="profile"),
            RunRequest(program=FAC % 6, tools="profile"),
        ]
        results = run_batch(requests, workers=2, config=shared)
        a, b = (result.metrics for result in results)
        assert a is not None and b is not None and a is not b
        assert a.steps != b.steps  # each counted its own run, not the sum
        assert shared.metrics.steps == 0  # the template never accumulated

    def test_batch_never_raises_for_request_failures(self):
        results = run_batch([RunRequest(program="(((")], workers=1)
        assert results[0].ok is False and results[0].error


class TestBatchSurface:
    def test_dict_requests_accepted(self):
        results = run_batch(
            [{"program": PLAIN % 5, "engine": "compiled", "tag": "x"}], workers=1
        )
        assert results[0].answer == 25 and results[0].tag == "x"

    def test_from_dict_merges_base_config(self):
        base = RunConfig(engine="compiled", fault_policy="log", max_steps=9999)
        request = RunRequest.from_dict({"program": "1", "engine": "reference"}, base=base)
        assert request.config.engine == "reference"
        assert request.config.fault_policy == "log"       # kept from base
        assert request.config.max_steps == 9999           # kept from base

    def test_dict_record_config_keys_overlay_runner_config(self):
        """A record's config keys must not shed the runner's config.

        The historical bypass: ``BatchRunner.run`` normalized dict records
        without ``base=``, so ``{"max_steps": ...}`` built a fresh
        ``lint="off"`` config and slipped past the runner's lint gate.
        """
        runner = BatchRunner(workers=1, config=RunConfig(lint="error"))
        results = runner.run(
            [
                {"program": "foo 1", "max_steps": 100},
                {"program": PLAIN % 4, "max_steps": 100},
            ]
        )
        assert results[0].ok is False
        assert results[0].error_type == "StaticAnalysisError"
        assert results[1].ok and results[1].answer == 16

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown batch request key"):
            RunRequest.from_dict({"program": "1", "engin": "compiled"})

    def test_from_dict_requires_program(self):
        with pytest.raises(ValueError, match="program"):
            RunRequest.from_dict({"tools": "profile"})

    def test_result_to_dict_is_json_safe(self):
        results = run_batch(
            [RunRequest(program=FAC % 4, tools="profile", tag="j")], workers=1
        )
        record = results[0].to_dict()
        json.dumps(record)  # must not raise
        assert record["ok"] is True and record["tag"] == "j"
        assert record["reports"]["profile"] == {"fac": 5}

    def test_batch_events_on_the_stream(self):
        sink = InMemorySink()
        requests = [RunRequest(program=PLAIN % n) for n in range(5)]
        run_batch(requests, workers=2, event_sink=sink)
        kinds = [event.type for event in sink.events]
        assert kinds[0] == "batch-start" and kinds[-1] == "batch-end"
        assert kinds.count("batch-request") == 5
        summary = replay(sink.events)
        assert summary.batch_requests == 5
        end = sink.of_type("batch-end")[0]
        assert end.payload["succeeded"] == 5 and end.payload["failed"] == 0

    def test_runtime_facade_shares_cache(self):
        runtime = Runtime(config=RunConfig(engine="compiled"), workers=2)
        single = runtime.run((), PLAIN % 7)
        assert single.answer == 49
        batch = runtime.run_batch([{"program": PLAIN % 7}])
        assert batch[0].answer == 49
        stats = runtime.cache_stats()
        assert stats.misses == 1 and stats.hits == 1

    def test_shared_cache_warms_across_batches(self):
        cache = CompilationCache(16)
        cfg = RunConfig(engine="compiled")
        requests = [RunRequest(program=FAC % 5, tools="profile") for _ in range(10)]
        first = run_batch(requests, workers=4, config=cfg, cache=cache)
        second = run_batch(requests, workers=4, config=cfg, cache=cache)
        assert all(result.ok for result in first + second)
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == 19


class TestTimeoutAdmission:
    """The PR 7 bugfix: a bad per-request ``timeout`` is rejected cleanly.

    Historically ``replace(cfg, timeout=...)`` spliced the override in
    without re-validating, so ``"timeout": 0`` sailed past the config's
    "must be positive" check and disabled the deadline entirely.  Now
    :func:`check_timeout` guards the admission boundary and a bad value
    fails *its own slot* with a diagnostic result.
    """

    def test_zero_timeout_record_is_rejected(self):
        results = run_batch(
            [{"program": PLAIN % 2, "timeout": 0, "tag": "z"}], workers=1
        )
        assert results[0].ok is False
        assert results[0].error_type == "ValueError"
        assert "positive" in results[0].error
        assert results[0].tag == "z"

    def test_negative_and_non_number_timeouts_rejected(self):
        results = run_batch(
            [
                {"program": PLAIN % 1, "timeout": -2},
                {"program": PLAIN % 2, "timeout": "soon"},
                {"program": PLAIN % 3, "timeout": True},
                {"program": PLAIN % 4},
            ],
            workers=1,
        )
        assert [result.ok for result in results] == [False, False, False, True]
        assert all(result.error_type == "ValueError" for result in results[:3])
        assert results[3].answer == 16

    def test_bad_request_timeout_fails_slot_not_batch(self):
        requests = [
            RunRequest(program=PLAIN % 1),
            RunRequest(program=PLAIN % 2, timeout=-1.0),
            RunRequest(program=PLAIN % 3),
        ]
        results = run_batch(requests, workers=2)
        assert [result.ok for result in results] == [True, False, True]
        assert results[1].error_type == "ValueError"

    def test_check_timeout_contract(self):
        from repro.runtime import check_timeout

        assert check_timeout(None) is None
        assert check_timeout(2) == 2.0
        with pytest.raises(ValueError, match="positive"):
            check_timeout(0)
        with pytest.raises(ValueError, match="number"):
            check_timeout(True)  # bools are not durations

    def test_valid_override_still_enforced(self):
        loop = "letrec loop = lambda x. loop (x + 1) in loop 0"
        results = run_batch([{"program": loop, "timeout": 0.2}], workers=1)
        assert results[0].timed_out is True
        assert results[0].error_type == "EvaluationTimeout"


class TestResultWireFormat:
    def test_to_dict_always_carries_duration(self):
        """The latency-reporting fix: ok and error records both have it."""
        results = run_batch(
            [
                {"program": PLAIN % 3},
                {"program": "((("},
                {"program": PLAIN % 1, "timeout": 0},
            ],
            workers=1,
        )
        for result in results:
            record = result.to_dict()
            assert "duration" in record
            assert isinstance(record["duration"], float)
        assert results[0].to_dict()["duration"] > 0.0

    def test_from_dict_inverts_to_dict(self):
        [result] = run_batch(
            [RunRequest(program=FAC % 4, tools="profile", tag="rt")], workers=1
        )
        back = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.ok is True and back.tag == "rt"
        assert back.answer == result.answer
        assert back.reports == result.reports
        assert back.metrics is None  # in-process-only fields do not cross
        assert back.monitored is None
