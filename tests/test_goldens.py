"""Golden-file regression suite for user-facing report output.

The tracer, profiler and collecting monitors, the quarantined-fault
report, and the CLI's ``--metrics`` summary are the runtime's visible
surface — the exact strings users (and the paper's Section 8 examples)
see.  These tests pin that surface to files under ``tests/goldens/``:
any formatting drift fails with a diff, and intentional changes are
refreshed with ``pytest --update-goldens``.

Where the output must be engine-independent (every deterministic report
is), the same golden file is asserted against both engines — so the
suite doubles as an output-parity check.
"""

import re

import pytest

from repro.cli import main

ENGINES = ["reference", "compiled", "codegen"]

FAC = "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac 4"
PLAIN_FAC = "letrec fac = lambda x. if x = 0 then 1 else x * fac (x - 1) in fac 4"
COLLECT_FAC = (
    "letrec fac = lambda n. if {test}:(n = 0) then 1 else {n}: n * (fac (n - 1)) "
    "in fac 3"
)

_TIME_LINE = re.compile(r"wall time: .*")


def _normalize_times(text: str) -> str:
    """Replace the wall-clock line — the only nondeterministic output."""
    return _TIME_LINE.sub("wall time: <normalized>", text)


@pytest.mark.parametrize("engine", ENGINES)
def test_tracer_report_golden(golden, capsys, engine):
    assert main(["trace", "-e", PLAIN_FAC, "--engine", engine]) == 0
    golden("cli_trace.txt", capsys.readouterr().out)


@pytest.mark.parametrize("engine", ENGINES)
def test_profiler_report_golden(golden, capsys, engine):
    assert main(["profile", "-e", PLAIN_FAC, "--engine", engine]) == 0
    golden("cli_profile.txt", capsys.readouterr().out)


@pytest.mark.parametrize("engine", ENGINES)
def test_collecting_report_golden(golden, capsys, engine):
    assert main(["run", "-e", COLLECT_FAC, "--tools", "collect", "--engine", engine]) == 0
    golden("cli_collect.txt", capsys.readouterr().out)


@pytest.fixture
def flaky_tool(monkeypatch):
    # Same pattern as TestFaultPolicy in test_cli.py: a deliberately
    # faulty toolbox monitor, deterministic across engines.
    from repro.monitoring.faults import FlakyMonitor
    from repro.monitors import ProfilerMonitor
    from repro.toolbox import registry

    monkeypatch.setitem(
        registry.TOOLBOX,
        "flaky",
        lambda namespace=None: FlakyMonitor(
            ProfilerMonitor(namespace=namespace), fail_on=2
        ),
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_quarantined_fault_report_golden(golden, capsys, flaky_tool, engine):
    assert (
        main(
            [
                "run",
                "-e",
                FAC,
                "--tools",
                "flaky",
                "--fault-policy",
                "quarantine",
                "--engine",
                engine,
            ]
        )
        == 0
    )
    golden("cli_quarantine.txt", capsys.readouterr().out)


@pytest.mark.parametrize("engine", ENGINES)
def test_metrics_output_golden(golden, capsys, engine):
    """The ``--metrics`` summary, time line normalized.

    One golden for both engines — the counters are engine-independent by
    construction, so this is the metrics-parity property pinned to the
    exact rendered text.
    """
    assert (
        main(["run", "-e", FAC, "--tools", "count", "--metrics", "--engine", engine])
        == 0
    )
    golden("cli_metrics.txt", _normalize_times(capsys.readouterr().out))


def test_metrics_output_unmonitored_golden(golden, capsys):
    assert main(["run", "-e", PLAIN_FAC, "--metrics"]) == 0
    golden("cli_metrics_unmonitored.txt", _normalize_times(capsys.readouterr().out))


CHECK_PROGRAM = (
    "let x = {p}: 1 in\n"
    "let y = {unknown: q}: 2 in\n"
    "x + y + froz"
)


def test_check_text_golden(golden, capsys):
    """The ``repro check`` caret-diagnostic surface, pinned exactly."""
    assert main(["check", "-e", CHECK_PROGRAM, "--monitors", "profile,count"]) == 1
    golden("cli_check.txt", capsys.readouterr().out)


def test_check_json_golden(golden, capsys):
    assert (
        main(
            [
                "check",
                "-e",
                CHECK_PROGRAM,
                "--monitors",
                "profile,count",
                "--format",
                "json",
            ]
        )
        == 1
    )
    golden("cli_check.json", capsys.readouterr().out)


def test_check_clean_golden(golden, capsys):
    assert main(["check", "-e", PLAIN_FAC, "--monitors", "profile"]) == 0
    golden("cli_check_clean.txt", capsys.readouterr().out)


BATCH_REQUESTS = [
    '{"program": "let f = lambda x. x + 1 in f 41", "engine": "compiled", "tag": "plain"}',
    '{"program": "%s", "tools": "profile", "engine": "compiled", "tag": "profiled"}' % FAC,
    '{"program": "let f = lambda x. x + 1 in f 41", "engine": "compiled", "tag": "repeat"}',
    '{"program": "1 +", "tag": "broken"}',
]


_DURATION_FIELD = re.compile(r'"duration": [0-9eE+.-]+')


def _normalize_durations(text: str) -> str:
    """Pin the per-request latency field — wall clock is nondeterministic."""
    return _DURATION_FIELD.sub('"duration": 0.0', text)


def test_batch_output_golden(golden, capsys, tmp_path):
    """The ``repro batch`` JSONL surface: results on stdout, stats on stderr.

    Answers, reports, error records and the cache counters are all
    deterministic; the measured ``duration`` field is normalized to 0.0
    (its *presence* is part of the pinned surface — serving clients read
    latency from it); the one failing request also pins the non-zero exit
    code.
    """
    requests = tmp_path / "requests.jsonl"
    requests.write_text("\n".join(BATCH_REQUESTS) + "\n", encoding="utf-8")
    assert main(["batch", str(requests), "--workers", "2", "--stats"]) == 1
    captured = capsys.readouterr()
    golden("cli_batch.jsonl", _normalize_durations(captured.out))
    golden("cli_batch_stats.txt", captured.err)


FLOW_PROGRAM = (
    "let x = if false then {p}: 1 else 2 in\n"
    "{q}: (x + 3)"
)


def test_check_flow_json_golden(golden, capsys):
    """The ``repro check --flow`` JSON surface: REP501 + REP502, pinned."""
    assert (
        main(
            [
                "check",
                "-e",
                FLOW_PROGRAM,
                "--monitors",
                "profile,trace",
                "--flow",
                "--format",
                "json",
            ]
        )
        == 0
    )
    golden("cli_check_flow.json", capsys.readouterr().out)
