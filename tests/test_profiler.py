"""Figure 6: the function-call profiler."""

from repro.languages import lazy, strict
from repro.monitoring.derive import run_monitored
from repro.monitors import ProfilerMonitor
from repro.monitors.profiler import inc_ctr, init_env
from repro.syntax.parser import parse


class TestPaperExample:
    def test_section8_result(self, paper_profiler_program):
        """The paper: [fac -> 4, mul -> 3] for fac 3."""
        result = run_monitored(strict, paper_profiler_program, ProfilerMonitor())
        assert result.answer == 6
        assert result.report() == {"fac": 4, "mul": 3}

    def test_report_sorted(self, paper_profiler_program):
        result = run_monitored(strict, paper_profiler_program, ProfilerMonitor())
        assert list(result.report()) == ["fac", "mul"]


class TestCounterEnvAlgebra:
    def test_init_env_empty(self):
        assert init_env() == {}

    def test_inc_ctr_initializes_to_one(self):
        assert inc_ctr("f", {}) == {"f": 1}

    def test_inc_ctr_increments(self):
        assert inc_ctr("f", {"f": 2}) == {"f": 3}

    def test_inc_ctr_pure(self):
        original = {"f": 1}
        inc_ctr("f", original)
        assert original == {"f": 1}


class TestBehavior:
    def test_uncalled_function_absent(self):
        program = parse(
            "letrec used = lambda x. {used}: x "
            "and unused = lambda x. {unused}: x "
            "in used 1"
        )
        result = run_monitored(strict, program, ProfilerMonitor())
        assert result.report() == {"used": 1}

    def test_profile_under_lazy_counts_demand(self):
        program = parse(
            "letrec f = lambda x. {f}: (x + 1) in "
            "let unused = f 1 in 42"
        )
        strict_hits = run_monitored(strict, program, ProfilerMonitor()).report()
        lazy_hits = run_monitored(lazy, program, ProfilerMonitor()).report()
        assert strict_hits == {"f": 1}
        assert lazy_hits == {}  # never demanded

    def test_namespaced_profiler(self):
        program = parse("letrec f = lambda x. {profile: f}: x in f 1")
        result = run_monitored(
            strict, program, ProfilerMonitor(namespace="profile")
        )
        assert result.report() == {"f": 1}

    def test_deep_recursion_profile(self):
        program = parse(
            "letrec f = lambda n. {f}: if n = 0 then 0 else f (n - 1) in f 10000"
        )
        result = run_monitored(strict, program, ProfilerMonitor())
        assert result.report() == {"f": 10001}
