"""Tests for the stepper and the scriptable debugger."""

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import DebuggerMonitor, StepperMonitor
from repro.syntax.parser import parse

FAC = "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac 2"


class TestStepper:
    def test_event_sequence(self):
        result = run_monitored(strict, parse(FAC), StepperMonitor())
        monitor = result.monitors[0]
        events = monitor.events(result.state_of(monitor))
        kinds = [(e.kind, e.depth) for e in events]
        assert kinds == [
            ("enter", 0),
            ("enter", 1),
            ("enter", 2),
            ("exit", 2),
            ("exit", 1),
            ("exit", 0),
        ]

    def test_exit_carries_value(self):
        result = run_monitored(strict, parse(FAC), StepperMonitor())
        monitor = result.monitors[0]
        exits = [e for e in monitor.events(result.state_of(monitor)) if e.kind == "exit"]
        assert [e.value for e in exits] == ["1", "1", "2"]

    def test_render(self):
        result = run_monitored(strict, parse("{p}: (1 + 1)"), StepperMonitor())
        text = result.report()
        assert "-> p" in text
        assert "<- p = 2" in text

    def test_long_source_truncated(self):
        monitor = StepperMonitor(max_source_width=10)
        result = run_monitored(
            strict, parse("{p}: (11111 + 22222 + 33333)"), monitor
        )
        events = monitor.events(result.state_of(monitor))
        assert all(len(e.source) <= 10 for e in events)

    def test_header_annotations_recognized(self):
        result = run_monitored(strict, parse("{f(x)}: 1"), StepperMonitor())
        assert "-> f" in result.report()


class TestDebugger:
    def test_break_and_print(self):
        debugger = DebuggerMonitor(["print x", "continue", "quit"], breakpoints=["fac"])
        result = run_monitored(strict, parse(FAC), debugger)
        transcript = result.report()
        assert "stopped at fac (stop #1)" in transcript
        assert "x = 2" in transcript
        assert "stopped at fac (stop #2)" in transcript

    def test_quit_stops_breaking(self):
        debugger = DebuggerMonitor(["quit"], breakpoints=["fac"])
        result = run_monitored(strict, parse(FAC), debugger)
        assert result.report().count("stopped at") == 1
        assert result.answer == 2

    def test_script_exhaustion_runs_to_completion(self):
        debugger = DebuggerMonitor(["print x"], breakpoints=["fac"])
        result = run_monitored(strict, parse(FAC), debugger)
        assert result.answer == 2
        assert result.report().count("stopped at") == 1

    def test_step_mode_breaks_at_any_site(self):
        program = parse("{a}: 1 + {b}: ({c}: 2)")
        debugger = DebuggerMonitor(
            ["step", "step", "quit"], breakpoints=["b"]
        )
        result = run_monitored(strict, program, debugger)
        transcript = result.report()
        assert "stopped at b" in transcript
        assert "stopped at c" in transcript

    def test_where_shows_stack(self):
        debugger = DebuggerMonitor(
            ["continue", "where", "quit"], breakpoints=["fac"]
        )
        result = run_monitored(strict, parse(FAC), debugger)
        assert "where: fac > fac" in result.report()

    def test_finish_reports_return(self):
        debugger = DebuggerMonitor(["finish", "quit"], breakpoints=["fac"])
        result = run_monitored(strict, parse(FAC), debugger)
        assert "fac returned 2" in result.report()

    def test_vars_lists_bindings(self):
        debugger = DebuggerMonitor(["vars", "quit"], breakpoints=["fac"])
        result = run_monitored(strict, parse(FAC), debugger)
        assert "vars:" in result.report()
        assert "x" in result.report()

    def test_source_command(self):
        debugger = DebuggerMonitor(["source", "quit"], breakpoints=["fac"])
        result = run_monitored(strict, parse(FAC), debugger)
        assert "source: if x = 0" in result.report()

    def test_unknown_command_reported(self):
        debugger = DebuggerMonitor(["frobnicate", "quit"], breakpoints=["fac"])
        result = run_monitored(strict, parse(FAC), debugger)
        assert "unknown command" in result.report()

    def test_unbound_print(self):
        debugger = DebuggerMonitor(["print zz", "quit"], breakpoints=["fac"])
        result = run_monitored(strict, parse(FAC), debugger)
        assert "zz is not bound here" in result.report()

    def test_answer_never_affected(self):
        debugger = DebuggerMonitor(
            ["print x", "step", "print x", "finish", "quit"], breakpoints=["fac"]
        )
        result = run_monitored(strict, parse(FAC), debugger)
        assert result.answer == 2
