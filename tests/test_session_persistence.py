"""Tests for session save/load."""

import pytest

from repro.errors import ReproError
from repro.languages import lazy
from repro.toolbox.session import Session


@pytest.fixture
def session():
    s = Session()
    s.define("double", "lambda x. x + x")
    s.define("fac", "lambda x. if x = 0 then 1 else x * fac (x - 1)")
    s.define("tagged", "lambda x. {tagged}: (x + 1)")
    return s


class TestRoundTrip:
    def test_save_load(self, session, tmp_path):
        path = tmp_path / "session.repro"
        session.save(path)
        restored = Session.load(path)
        assert restored.names() == session.names()
        assert restored.evaluate("fac (double 2)").answer == 24

    def test_annotations_survive(self, session, tmp_path):
        path = tmp_path / "session.repro"
        session.save(path)
        restored = Session.load(path)
        result = restored.evaluate("tagged 1", tools=["count"])
        # 'count' claims bare labels; the saved {tagged} annotation fires.
        assert result.report("count") == {"tagged": 1}

    def test_file_is_readable_source(self, session, tmp_path):
        path = tmp_path / "session.repro"
        session.save(path)
        text = path.read_text()
        assert "-- define: fac" in text
        assert "lambda x." in text

    def test_load_with_language(self, session, tmp_path):
        path = tmp_path / "session.repro"
        session.save(path)
        restored = Session.load(path, language=lazy)
        assert restored.language is lazy

    def test_empty_session(self, tmp_path):
        path = tmp_path / "empty.repro"
        Session().save(path)
        restored = Session.load(path)
        assert restored.names() == ()

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("not a session\n")
        with pytest.raises(ReproError):
            Session.load(path)

    def test_hand_edit_survives(self, session, tmp_path):
        path = tmp_path / "session.repro"
        session.save(path)
        text = path.read_text().replace("x + x", "x * 3")
        path.write_text(text)
        restored = Session.load(path)
        assert restored.evaluate("double 2").answer == 6
