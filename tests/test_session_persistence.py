"""Tests for session save/load."""

import pytest

from repro.errors import ReproError
from repro.languages import lazy
from repro.toolbox.session import Session


@pytest.fixture
def session():
    s = Session()
    s.define("double", "lambda x. x + x")
    s.define("fac", "lambda x. if x = 0 then 1 else x * fac (x - 1)")
    s.define("tagged", "lambda x. {tagged}: (x + 1)")
    return s


class TestRoundTrip:
    def test_save_load(self, session, tmp_path):
        path = tmp_path / "session.repro"
        session.save(path)
        restored = Session.load(path)
        assert restored.names() == session.names()
        assert restored.evaluate("fac (double 2)").answer == 24

    def test_annotations_survive(self, session, tmp_path):
        path = tmp_path / "session.repro"
        session.save(path)
        restored = Session.load(path)
        result = restored.evaluate("tagged 1", tools=["count"])
        # 'count' claims bare labels; the saved {tagged} annotation fires.
        assert result.report("count") == {"tagged": 1}

    def test_file_is_readable_source(self, session, tmp_path):
        path = tmp_path / "session.repro"
        session.save(path)
        text = path.read_text()
        assert "-- define: fac" in text
        assert "lambda x." in text

    def test_load_with_language(self, session, tmp_path):
        path = tmp_path / "session.repro"
        session.save(path)
        restored = Session.load(path, language=lazy)
        assert restored.language is lazy

    def test_empty_session(self, tmp_path):
        path = tmp_path / "empty.repro"
        Session().save(path)
        restored = Session.load(path)
        assert restored.names() == ()

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("not a session\n")
        with pytest.raises(ReproError):
            Session.load(path)

    def test_hand_edit_survives(self, session, tmp_path):
        path = tmp_path / "session.repro"
        session.save(path)
        text = path.read_text().replace("x + x", "x * 3")
        path.write_text(text)
        restored = Session.load(path)
        assert restored.evaluate("double 2").answer == 6

    def test_label_and_header_annotations_round_trip(self, tmp_path):
        # Annotated definitions must survive pretty() -> save -> parse():
        # both bare labels and tracer headers come back firing.
        from repro.monitors import TracerMonitor

        s = Session()
        s.define(
            "fac",
            "lambda x. {fac(x)}: {fac}: if x = 0 then 1 else x * fac (x - 1)",
        )
        path = tmp_path / "annotated.repro"
        s.save(path)
        restored = Session.load(path)
        result = restored.evaluate("fac 4", tools=[TracerMonitor(), "count"])
        assert result.answer == 24
        assert result.report("count") == {"fac": 5}
        assert "[FAC receives (4)]" in result.report("trace")


class TestSessionFaultIsolation:
    @pytest.fixture
    def saved_session(self, tmp_path):
        s = Session()
        s.define("fac", "lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1)")
        path = tmp_path / "fault.repro"
        s.save(path)
        return Session.load(path)

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_quarantined_profiler_reports_pre_fault_counts(
        self, saved_session, engine
    ):
        # A profiler that dies on its third activation is quarantined,
        # the answer stays standard, and its report still covers the
        # calls it counted before the fault.
        from repro.monitoring.faults import FlakyMonitor
        from repro.monitors import ProfilerMonitor

        flaky = FlakyMonitor(ProfilerMonitor(), fail_on=3)
        result = saved_session.evaluate(
            "fac 4", tools=[flaky], engine=engine, fault_policy="quarantine"
        )
        assert result.answer == 24
        assert result.report("profile") == {"fac": 2}
        assert result.monitored.quarantined_keys() == ("profile",)
        assert not result.monitored.healthy()

    def test_propagate_stays_default_through_session(self, saved_session):
        from repro.monitoring.faults import FlakyMonitor, InjectedFault
        from repro.monitors import ProfilerMonitor

        flaky = FlakyMonitor(ProfilerMonitor(), fail_on=1)
        with pytest.raises(InjectedFault):
            saved_session.evaluate("fac 4", tools=[flaky])
