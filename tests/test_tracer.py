"""Figure 7: the fancy tracer."""

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import TracerMonitor
from repro.monitors.streams import init_stream
from repro.monitors.tracer import init_state, print_chan
from repro.syntax.parser import parse

EXPECTED_TRACE = """\
[FAC receives (3)]
|    [FAC receives (2)]
|    |    [FAC receives (1)]
|    |    |    [FAC receives (0)]
|    |    |    [FAC returns 1]
|    |    |    [MUL receives (1 1)]
|    |    |    [MUL returns 1]
|    |    [FAC returns 1]
|    |    [MUL receives (2 1)]
|    |    [MUL returns 2]
|    [FAC returns 2]
|    [MUL receives (3 2)]
|    [MUL returns 6]
[FAC returns 6]
"""


class TestPaperExample:
    def test_section8_trace(self, paper_tracer_program):
        result = run_monitored(strict, paper_tracer_program, TracerMonitor())
        assert result.answer == 6
        assert result.report() == EXPECTED_TRACE

    def test_level_returns_to_zero(self, paper_tracer_program):
        result = run_monitored(strict, paper_tracer_program, TracerMonitor())
        _, level = result.state_of("trace")
        assert level == 0


class TestStateAlgebra:
    def test_init_state(self):
        channel, level = init_state()
        assert level == 0
        assert channel.render() == ""

    def test_print_chan_indents(self):
        channel = print_chan("[X]", 2, init_stream())
        assert channel.render() == "|    |    [X]\n"

    def test_print_chan_pure(self):
        base = init_stream()
        print_chan("a", 0, base)
        assert base.render() == ""


class TestRendering:
    def test_list_arguments(self):
        program = parse(
            "letrec f = lambda l. {f(l)}: (length l) in f [1, 2]"
        )
        result = run_monitored(strict, program, TracerMonitor())
        assert "[F receives ([1, 2])]" in result.report()
        assert "[F returns 2]" in result.report()

    def test_lowercase_option(self, paper_tracer_program):
        result = run_monitored(
            strict, paper_tracer_program, TracerMonitor(uppercase=False)
        )
        assert "[fac receives (3)]" in result.report()

    def test_unbound_parameter_shows_question_mark(self):
        program = parse("{f(zz)}: 1")
        result = run_monitored(strict, program, TracerMonitor())
        assert "[F receives (?)]" in result.report()

    def test_boolean_rendering(self):
        program = parse("letrec f = lambda b. {f(b)}: b in f true")
        result = run_monitored(strict, program, TracerMonitor())
        assert "[F receives (True)]" in result.report()
        assert "[F returns True]" in result.report()

    def test_zero_arg_header(self):
        program = parse("letrec f = lambda x. {f()}: 7 in f 0")
        result = run_monitored(strict, program, TracerMonitor())
        assert "[F receives ()]" in result.report()


class TestSelectivity:
    def test_labels_not_traced(self):
        program = parse("{plain}: 1 + {f(x)}: 2")
        result = run_monitored(strict, program, TracerMonitor())
        assert "plain" not in result.report()
        assert "[F receives" in result.report()

    def test_no_annotations_no_output(self):
        result = run_monitored(strict, parse("1 + 1"), TracerMonitor())
        assert result.report() == ""
