"""Tests for the interactive debugger front end."""

from repro.monitors.interactive import ConsoleSource, IteratorSource, debug
from repro.syntax.parser import parse

FAC = "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac 3"


class TestSources:
    def test_iterator_source(self):
        source = IteratorSource(["a", "b"])
        assert source() == "a"
        assert source() == "b"
        assert source() is None

    def test_console_source_reads(self):
        prompts = []

        def fake_input(prompt):
            prompts.append(prompt)
            return "continue"

        source = ConsoleSource(input_fn=fake_input)
        assert source() == "continue"
        assert prompts == ["(mdb) "]

    def test_console_source_eof(self):
        def raising_input(prompt):
            raise EOFError

        assert ConsoleSource(input_fn=raising_input)() is None


class TestLiveDebugging:
    def test_live_session_with_iterator(self):
        lines = []
        result = debug(
            parse(FAC),
            breakpoints=["fac"],
            source=IteratorSource(["print x", "continue", "quit"]),
            output=lines.append,
        )
        assert result.answer == 6
        assert any("x = 3" in line for line in lines)
        # The live echo and the recorded transcript agree.
        assert "\n".join(lines) + "\n" == result.report()

    def test_script_then_source(self):
        lines = []
        result = debug(
            parse(FAC),
            breakpoints=["fac"],
            script=["print x"],
            source=IteratorSource(["continue", "quit"]),
            output=lines.append,
        )
        assert result.answer == 6
        assert any("stopped at fac (stop #2)" in line for line in lines)

    def test_eof_runs_to_completion(self):
        lines = []
        result = debug(
            parse(FAC),
            breakpoints=["fac"],
            source=IteratorSource([]),
            output=lines.append,
        )
        assert result.answer == 6

    def test_max_steps_threads_through(self):
        import pytest

        from repro.errors import StepLimitExceeded

        with pytest.raises(StepLimitExceeded) as exc:
            debug(
                parse("letrec loop = lambda x. loop x in loop 1"),
                source=IteratorSource([]),
                output=lambda line: None,
                max_steps=400,
            )
        assert exc.value.limit == 400

    def test_generous_max_steps_is_harmless(self):
        result = debug(
            parse(FAC),
            breakpoints=["fac"],
            source=IteratorSource([]),
            output=lambda line: None,
            max_steps=1_000_000,
        )
        assert result.answer == 6
