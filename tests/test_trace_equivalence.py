"""Differential equivalence: post-hoc trace folding vs inline monitoring.

Section 7's soundness theorem says monitors cannot change program
behavior; its operational corollary (the premise of the trace backend)
is that a monitor's meaning is a *fold over the execution trace*.  These
property tests check the corollary end to end: record a generated
program once, fold monitor stacks over the trace, and demand the same
reports, metrics counters and fault records as running the same stack
inline — on every engine and under every fault policy.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings

from repro.languages.imperative import imperative
from repro.languages.strict import strict
from repro.monitoring.derive import run_monitored
from repro.monitoring.faults import FlakyMonitor, InjectedFault
from repro.monitors import (
    CollectingMonitor,
    LabelCounterMonitor,
    ProfilerMonitor,
    TracerMonitor,
)
from repro.observability.metrics import RunMetrics
from repro.runtime.config import RunConfig
from repro.tracing import analyze_many, analyze_trace, record
from repro.tracing.schema import canonical_json, encode_value

from tests.generators import closed_program, recursive_program
from tests.test_imp_properties import closed_imp_program

ENGINES = ("reference", "compiled", "codegen")


def answers_agree(inline_answer, fold_answer) -> bool:
    """Observational equality through the trace value codec.

    The fold's answer round-trips through the trace encoding (functions
    come back as display-equal opaques, stores as plain bindings), so
    comparing both sides' *encodings* is exactly the equality the codec
    can promise.
    """
    return canonical_json(encode_value(inline_answer)) == canonical_json(
        encode_value(fold_answer)
    )


def record_to(tmpdir, language, program, **kwargs):
    path = os.path.join(tmpdir, "trace.jsonl")
    record(language, program, path, **kwargs)
    return path


def assert_fold_matches(inline, fold):
    assert answers_agree(inline.answer, fold.answer)
    assert fold.reports() == inline.reports()
    assert fold.faults == inline.faults
    if inline.metrics is not None:
        assert fold.metrics == inline.metrics


# -- L_lambda, every engine ------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(closed_program())
def test_fold_matches_inline_on_every_engine(program):
    """counter & tracer: fold ≡ inline for reference, compiled, codegen."""
    with tempfile.TemporaryDirectory() as tmp:
        for engine in ENGINES:
            counter, tracer = LabelCounterMonitor(), TracerMonitor()
            inline = run_monitored(
                strict, program, [counter, tracer], engine=engine
            )
            path = record_to(
                tmp,
                strict,
                program,
                monitors=[counter, tracer],
                config=RunConfig(engine=engine),
            )
            fold = analyze_trace(path, [counter, tracer])
            assert_fold_matches(inline, fold)


@settings(max_examples=30, deadline=None)
@given(recursive_program())
def test_fold_metrics_match_inline(program):
    """Full RunMetrics equality (counters; wall times excluded by design)."""
    with tempfile.TemporaryDirectory() as tmp:
        profiler = ProfilerMonitor()
        inline = run_monitored(
            strict, program, [profiler], metrics=RunMetrics()
        )
        path = record_to(
            tmp,
            strict,
            program,
            monitors=[profiler],
            config=RunConfig(metrics=RunMetrics()),
        )
        fold = analyze_trace(path, [profiler], metrics=True)
        assert_fold_matches(inline, fold)
        assert fold.metrics.steps == inline.metrics.steps
        assert fold.metrics.applications == inline.metrics.applications


# -- L_imp (reference engine; the fast engines are strict-only) -----------------


@settings(max_examples=40, deadline=None)
@given(closed_imp_program())
def test_imp_fold_matches_inline(program):
    with tempfile.TemporaryDirectory() as tmp:
        counter = LabelCounterMonitor()
        inline = run_monitored(
            imperative, program, [counter], max_steps=1_000_000
        )
        path = record_to(
            tmp,
            imperative,
            program,
            monitors=[counter],
            config=RunConfig(max_steps=1_000_000),
        )
        fold = analyze_trace(path, [counter])
        assert_fold_matches(inline, fold)


# -- fault policies --------------------------------------------------------------


@pytest.mark.parametrize("policy", ["quarantine", "log"])
@pytest.mark.parametrize("phase", ["pre", "post", "both"])
@settings(max_examples=25, deadline=None)
@given(recursive_program())
def test_fault_policies_agree(policy, phase, program):
    """A flaky monitor faults identically inline and in the fold."""
    with tempfile.TemporaryDirectory() as tmp:

        def flaky():
            return FlakyMonitor(
                LabelCounterMonitor(), fail_on=2, phase=phase
            )

        inline = run_monitored(
            strict, program, [flaky()], fault_policy=policy
        )
        path = record_to(tmp, strict, program, monitors=[flaky()])
        fold = analyze_trace(path, [flaky()], fault_policy=policy)
        assert_fold_matches(inline, fold)


@settings(max_examples=15, deadline=None)
@given(recursive_program())
def test_propagate_raises_identically(program):
    """Under ``propagate``, fold and inline raise the same fault (or none)."""
    with tempfile.TemporaryDirectory() as tmp:

        def flaky():
            return FlakyMonitor(LabelCounterMonitor(), fail_on=1, phase="pre")

        inline_error = fold_error = None
        try:
            run_monitored(strict, program, [flaky()], fault_policy="propagate")
        except InjectedFault as exc:
            inline_error = str(exc)
        path = record_to(tmp, strict, program, monitors=[flaky()])
        try:
            analyze_trace(path, [flaky()], fault_policy="propagate")
        except InjectedFault as exc:
            fold_error = str(exc)
        assert inline_error == fold_error


# -- engine-independent traces ---------------------------------------------------


def event_lines(path):
    """The trace's event lines (header carries the engine name; skip it)."""
    with open(path, "r", encoding="utf-8") as handle:
        return [line for line in handle if '"t":"header"' not in line]


@settings(max_examples=25, deadline=None)
@given(closed_program())
def test_trace_is_engine_independent(program):
    """All three engines record byte-identical event streams.

    This is engine parity made concrete: the observable hook sequence —
    not just the final states — is the same across implementations.
    """
    with tempfile.TemporaryDirectory() as tmp:
        monitors = [LabelCounterMonitor(), TracerMonitor()]
        lines = {}
        for engine in ENGINES:
            path = os.path.join(tmp, f"{engine}.jsonl")
            record(
                strict,
                program,
                path,
                monitors=monitors,
                config=RunConfig(engine=engine),
            )
            lines[engine] = event_lines(path)
        assert lines["compiled"] == lines["reference"]
        assert lines["codegen"] == lines["reference"]


def test_trace_bytes_identical_across_engines(tmp_path):
    program = (
        "letrec fac = lambda x. {fac}: if x = 0 then 1 "
        "else x * fac (x - 1) in fac 6"
    )
    from repro.syntax.parser import parse

    expr = parse(program)
    lines = {}
    for engine in ENGINES:
        path = str(tmp_path / f"{engine}.jsonl")
        record(
            strict,
            expr,
            path,
            monitors=[TracerMonitor(), LabelCounterMonitor()],
            config=RunConfig(engine=engine),
        )
        lines[engine] = event_lines(path)
    assert lines["compiled"] == lines["reference"]
    assert lines["codegen"] == lines["reference"]


# -- one trace, many stacks ------------------------------------------------------


def test_analyze_many_matches_individual_folds(tmp_path):
    program = (
        "letrec fib = lambda n. {fib}: if n <= 1 then n "
        "else fib (n - 1) + fib (n - 2) in fib 10"
    )
    from repro.syntax.parser import parse

    expr = parse(program)
    stacks = [
        [TracerMonitor()],
        [ProfilerMonitor()],
        [LabelCounterMonitor()],
    ]
    path = str(tmp_path / "trace.jsonl")
    record(
        strict,
        expr,
        path,
        monitors=[spec for stack in stacks for spec in stack],
        config=RunConfig(metrics=RunMetrics()),
    )
    concurrent = analyze_many(path, stacks, workers=3, metrics=True)
    sequential = [analyze_trace(path, stack, metrics=True) for stack in stacks]
    for conc, seq, stack in zip(concurrent, sequential, stacks):
        assert conc.reports() == seq.reports()
        assert conc.metrics == seq.metrics
        inline = run_monitored(
            strict, expr, stack, metrics=RunMetrics()
        )
        assert_fold_matches(inline, conc)
