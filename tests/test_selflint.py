"""Self-lint: every shipped surface-syntax program passes ``repro check``.

The examples and the cookbook are the repo's showcase; a diagnostic
firing on them would mean either a broken example or an over-eager
analyzer.  This suite extracts every string literal passed to ``parse``
— from ``examples/*.py`` via the Python AST, and from the cookbook's
fenced ``python`` blocks — and runs the real CLI over each.

Programs whose free variables are the point (the partial-evaluation
example specializes ``pow`` against an *unknown* ``y``) are declared in
``OPEN_PROGRAMS``; for those, the only permitted findings are ``REP101``
on exactly the declared names.
"""

import ast
import io
import json
import pathlib
import re
import textwrap
from contextlib import redirect_stdout

import pytest

from repro.cli import main

REPO = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO / "examples"
COOKBOOK = REPO / "docs" / "MONITOR_COOKBOOK.md"

#: (example file, frozenset of intentionally free identifiers).  The
#: specialization pipeline leaves ``y`` unbound on purpose: it is the
#: dynamic input the partial evaluator residualizes over.
OPEN_PROGRAMS = {
    "specialization_pipeline.py": frozenset({"y"}),
}


def _parse_literals(tree):
    """Every string literal passed to a top-level ``parse(...)`` call."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name != "parse" or not node.args:
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            yield node.lineno, arg.value


def _example_snippets():
    for script in sorted(EXAMPLES_DIR.glob("*.py")):
        tree = ast.parse(script.read_text(encoding="utf-8"))
        for lineno, text in _parse_literals(tree):
            yield script.name, lineno, text


def _cookbook_snippets():
    blocks = re.findall(
        r"```python\n(.*?)```", COOKBOOK.read_text(encoding="utf-8"), re.S
    )
    for index, block in enumerate(blocks):
        try:
            tree = ast.parse(textwrap.dedent(block))
        except SyntaxError:
            continue  # indented fragment of a larger listing
        for lineno, text in _parse_literals(tree):
            yield f"MONITOR_COOKBOOK.md#block{index}", lineno, text


EXAMPLE_SNIPPETS = list(_example_snippets())
COOKBOOK_SNIPPETS = list(_cookbook_snippets())


def _check_json(program):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["check", "-e", program, "--format", "json"])
    return code, json.loads(buffer.getvalue())


def test_extraction_found_the_corpus():
    # Guard against a refactor silently emptying the sweep.
    assert len(EXAMPLE_SNIPPETS) >= 10
    assert len(COOKBOOK_SNIPPETS) >= 1


@pytest.mark.parametrize(
    "origin,lineno,program",
    EXAMPLE_SNIPPETS + COOKBOOK_SNIPPETS,
    ids=[f"{origin}:{lineno}" for origin, lineno, _ in EXAMPLE_SNIPPETS + COOKBOOK_SNIPPETS],
)
def test_shipped_program_is_clean(origin, lineno, program):
    code, report = _check_json(program)
    open_names = OPEN_PROGRAMS.get(origin.split("#")[0].split(":")[0], frozenset())
    diagnostics = report["diagnostics"]
    if not open_names:
        assert code == 0, f"{origin}:{lineno} is not lint-clean: {diagnostics}"
        assert report["ok"] is True
        return
    for diagnostic in diagnostics:
        assert diagnostic["code"] == "REP101", (
            f"{origin}:{lineno}: only declared-open REP101 findings are "
            f"allowed, got {diagnostic}"
        )
        named = re.search(r"'([^']+)'", diagnostic["message"])
        assert named and named.group(1) in open_names, (
            f"{origin}:{lineno}: unbound {diagnostic['message']!r} is not "
            f"declared in OPEN_PROGRAMS"
        )


def _check_flow_json(program):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["check", "-e", program, "--format", "json", "--flow"])
    return code, json.loads(buffer.getvalue())


@pytest.mark.parametrize(
    "origin,lineno,program",
    EXAMPLE_SNIPPETS + COOKBOOK_SNIPPETS,
    ids=[f"{origin}:{lineno}" for origin, lineno, _ in EXAMPLE_SNIPPETS + COOKBOOK_SNIPPETS],
)
def test_shipped_program_is_flow_clean(origin, lineno, program):
    """Every shipped program survives the reachability pass: no site the
    showcase annotates is statically dead (``REP5xx`` stays silent)."""
    code, report = _check_flow_json(program)
    flow_findings = [
        d for d in report["diagnostics"] if d["code"].startswith("REP5")
    ]
    assert not flow_findings, (
        f"{origin}:{lineno} has flow findings: {flow_findings}"
    )
