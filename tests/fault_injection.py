"""The fault-injection harness: shared machinery for soundness-under-fault.

The fault-isolation layer promises that, under ``fault_policy=
"quarantine"``, a monitor raising mid-run never changes the program's
standard answer — and that both execution engines agree on *everything*
observable afterwards: the answer, the surviving monitors' states, and
the fault records themselves.  This module packages the pieces the
differential suite (``tests/test_fault_injection.py``), the engine-parity
suite and the benchmark gate all need:

* :func:`flaky_counter` / :func:`flaky_profiler` — deterministic faulty
  monitors built from :class:`repro.monitoring.faults.FlakyMonitor`;
* :func:`run_both_with_faults` — one program, one monitor stack, both
  engines, any policy;
* :func:`assert_fault_parity` — the executable statement of the
  soundness-under-fault theorem: answers, fault records and surviving
  states all agree.

Everything here is importable (no tests are collected from this module),
so downstream monitor authors can reuse the same checks.
"""

from __future__ import annotations

from repro.languages.strict import strict
from repro.monitoring.derive import run_monitored
from repro.monitoring.faults import FlakyMonitor, InjectedFault
from repro.monitors import LabelCounterMonitor, ProfilerMonitor, TracerMonitor
from repro.syntax.parser import parse

#: An annotated recursive workload: five ``{fac}`` label hits, plus a
#: tracer-visible function header in FAC_TRACED.
FAC_LABELED = (
    "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) "
    "in fac 4"
)
FAC_TRACED = (
    "letrec fac = lambda x. {fac(x)}: if x = 0 then 1 else x * fac (x - 1) "
    "in fac 4"
)


def flaky_counter(fail_on: int, *, phase: str = "pre") -> FlakyMonitor:
    """A label counter that raises :class:`InjectedFault` on call N."""
    return FlakyMonitor(LabelCounterMonitor(), fail_on=fail_on, phase=phase)


def flaky_profiler(fail_on: int, *, phase: str = "pre", **kwargs) -> FlakyMonitor:
    """A Figure 6 profiler that raises :class:`InjectedFault` on call N."""
    return FlakyMonitor(ProfilerMonitor(), fail_on=fail_on, phase=phase, **kwargs)


def run_both_with_faults(program, make_monitors, fault_policy="quarantine"):
    """Run ``program`` under both engines with freshly built monitors.

    ``make_monitors`` is a zero-argument callable returning the monitor
    stack — monitors are rebuilt per engine so neither run can leak state
    into the other.  Returns ``(reference_result, compiled_result)``.
    """
    if isinstance(program, str):
        program = parse(program)
    ref = run_monitored(
        strict, program, make_monitors(), engine="reference",
        fault_policy=fault_policy,
    )
    com = run_monitored(
        strict, program, make_monitors(), engine="compiled",
        fault_policy=fault_policy,
    )
    return ref, com


def assert_fault_parity(ref, com, *, surviving_keys=()):
    """Both engines agree on answer, fault records and surviving states.

    ``surviving_keys`` names monitors expected to stay healthy; their
    final states must match exactly across engines (tracer states are
    compared through their rendered output, as in the parity suite).
    """
    assert ref.answer == com.answer, (
        f"answers diverged under faults: {ref.answer!r} vs {com.answer!r}"
    )
    assert ref.faults == com.faults, (
        f"fault records diverged: {ref.faults!r} vs {com.faults!r}"
    )
    assert ref.quarantined_keys() == com.quarantined_keys()
    for key in surviving_keys:
        ref_state, com_state = ref.state_of(key), com.state_of(key)
        if _is_tracer_state(ref_state):
            assert ref_state[0].render() == com_state[0].render()
            assert ref_state[1] == com_state[1]
        else:
            assert ref_state == com_state, (
                f"surviving monitor {key!r} diverged: "
                f"{ref_state!r} vs {com_state!r}"
            )


def _is_tracer_state(state) -> bool:
    return (
        isinstance(state, tuple)
        and len(state) == 2
        and hasattr(state[0], "render")
    )


__all__ = [
    "FAC_LABELED",
    "FAC_TRACED",
    "FlakyMonitor",
    "InjectedFault",
    "TracerMonitor",
    "assert_fault_parity",
    "flaky_counter",
    "flaky_profiler",
    "run_both_with_faults",
]
