"""Tests for the primitive operations and initial environment."""

import pytest

from repro.errors import PrimitiveError
from repro.languages import strict
from repro.semantics.primitives import (
    PRIMITIVE_TABLE,
    initial_environment,
    make_primitive,
)
from repro.semantics.values import NIL, from_python_list
from repro.syntax.parser import parse


def run(source):
    return strict.evaluate(parse(source))


class TestArithmetic:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("2 + 3", 5),
            ("2 - 3", -1),
            ("2 * 3", 6),
            ("7 / 2", 3),
            ("-7 / 2", -3),  # truncation toward zero
            ("7 % 2", 1),
            ("-7 % 2", -1),
            ("neg 5", -5),
            ("abs (-5)", 5),
            ("min 2 9", 2),
            ("max 2 9", 9),
        ],
    )
    def test_integer_ops(self, source, expected):
        assert run(source) == expected

    def test_float_division(self):
        assert run("7.0 / 2.0") == 3.5

    def test_sqrt(self):
        assert run("sqrt 9") == 3.0

    def test_sqrt_negative(self):
        with pytest.raises(PrimitiveError):
            run("sqrt (-1)")

    def test_division_by_zero(self):
        with pytest.raises(PrimitiveError):
            run("1 / 0")

    def test_modulo_by_zero(self):
        with pytest.raises(PrimitiveError):
            run("1 % 0")

    def test_add_type_error(self):
        with pytest.raises(PrimitiveError):
            run("1 + true")

    def test_bool_is_not_number(self):
        with pytest.raises(PrimitiveError):
            run("true + 1")


class TestComparison:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("1 = 1", True),
            ("1 = 2", False),
            ("1 /= 2", True),
            ("1 < 2", True),
            ("2 <= 2", True),
            ("3 > 2", True),
            ("2 >= 3", False),
            ('"a" < "b"', True),
            ("[1, 2] = [1, 2]", True),
            ("[1] = [1, 2]", False),
            ("true = true", True),
            ("1 = true", False),
        ],
    )
    def test_comparisons(self, source, expected):
        assert run(source) is expected

    def test_function_equality_rejected(self):
        with pytest.raises(PrimitiveError):
            run("(lambda x. x) = (lambda y. y)")

    def test_ordering_type_error(self):
        with pytest.raises(PrimitiveError):
            run("true < 1")


class TestLogic:
    def test_not(self):
        assert run("not true") is False

    def test_and_or(self):
        assert run("true && false") is False
        assert run("true || false") is True
        assert run("1 < 2 && 2 < 3") is True

    def test_not_type_error(self):
        with pytest.raises(PrimitiveError):
            run("not 1")


class TestLists:
    def test_cons_hd_tl(self):
        assert run("hd (1 :: [])") == 1
        assert run("tl (1 :: [2])") == from_python_list([2])

    def test_nullp(self):
        assert run("null? []") is True
        assert run("null? [1]") is False

    def test_length(self):
        assert run("length [1, 2, 3]") == 3
        assert run("length []") == 0

    def test_hd_of_empty(self):
        with pytest.raises(PrimitiveError):
            run("hd []")

    def test_tl_of_empty(self):
        with pytest.raises(PrimitiveError):
            run("tl []")

    def test_hd_of_non_list(self):
        with pytest.raises(PrimitiveError):
            run("hd 3")


class TestStrings:
    def test_append(self):
        assert run('"ab" ++ "cd"') == "abcd"

    def test_to_str(self):
        assert run("toStr 42") == "42"
        assert run("toStr [1, 2]") == "[1, 2]"
        assert run("toStr true") == "True"

    def test_strlen(self):
        assert run('strlen "abcd"') == 4

    def test_append_type_error(self):
        with pytest.raises(PrimitiveError):
            run('"a" ++ 1')


class TestPredicates:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("int? 1", True),
            ("int? true", False),
            ("bool? false", True),
            ("string? \"x\"", True),
            ("list? []", True),
            ("list? [1]", True),
            ("list? 1", False),
            ("function? (lambda x. x)", True),
            ("function? hd", True),
            ("function? 3", False),
        ],
    )
    def test_predicates(self, source, expected):
        assert run(source) is expected


class TestInitialEnvironment:
    def test_all_primitives_bound(self):
        env = initial_environment()
        for name in PRIMITIVE_TABLE:
            assert env.maybe_lookup(name) is not None

    def test_nil_bound(self):
        assert initial_environment().lookup("nil") is NIL

    def test_make_primitive_arity(self):
        assert make_primitive("+").arity == 2
        assert make_primitive("hd").arity == 1

    def test_partial_application_through_language(self):
        assert run("let add2 = (+) 2 in add2 40") == 42

    def test_primitive_as_value(self):
        assert run("(lambda f. f 1 2) (+)") == 3
