"""Tests for environments."""

import pytest

from repro.errors import UnboundIdentifierError
from repro.semantics.env import Environment, empty_environment
from repro.semantics.values import Closure
from repro.syntax.annotations import Label
from repro.syntax.ast import Annotated, Const, Lam, Var


class TestLookup:
    def test_empty_raises(self):
        with pytest.raises(UnboundIdentifierError):
            empty_environment().lookup("x")

    def test_extend_and_lookup(self):
        env = empty_environment().extend("x", 1)
        assert env.lookup("x") == 1

    def test_shadowing(self):
        env = empty_environment().extend("x", 1).extend("x", 2)
        assert env.lookup("x") == 2

    def test_parent_chain(self):
        env = empty_environment().extend("x", 1).extend("y", 2)
        assert env.lookup("x") == 1

    def test_maybe_lookup(self):
        env = empty_environment().extend("x", 1)
        assert env.maybe_lookup("x") == 1
        assert env.maybe_lookup("z") is None

    def test_contains(self):
        env = empty_environment().extend("x", 1)
        assert "x" in env
        assert "y" not in env

    def test_persistence(self):
        base = empty_environment().extend("x", 1)
        child = base.extend("x", 2)
        assert base.lookup("x") == 1
        assert child.lookup("x") == 2


class TestExtendRecursive:
    def test_closure_sees_itself(self):
        env = empty_environment().extend_recursive(
            (("f", Lam("x", Var("f"))),)
        )
        closure = env.lookup("f")
        assert isinstance(closure, Closure)
        assert closure.env.lookup("f") is closure

    def test_mutual_recursion(self):
        env = empty_environment().extend_recursive(
            (("f", Lam("x", Var("g"))), ("g", Lam("y", Var("f"))))
        )
        assert env.lookup("f").env.lookup("g") is env.lookup("g")

    def test_annotated_lambda_stripped_shallow(self):
        env = empty_environment().extend_recursive(
            (("f", Annotated(Label("p"), Lam("x", Const(1)))),)
        )
        closure = env.lookup("f")
        assert closure.param == "x"

    def test_closure_named(self):
        env = empty_environment().extend_recursive((("f", Lam("x", Const(1))),))
        assert env.lookup("f").name == "f"


class TestIntrospection:
    def test_names_innermost_first(self):
        env = empty_environment().extend("a", 1).extend("b", 2)
        assert env.names() == ("b", "a")

    def test_names_deduplicated(self):
        env = empty_environment().extend("a", 1).extend("a", 2)
        assert env.names() == ("a",)

    def test_extend_many(self):
        env = empty_environment().extend_many({"a": 1, "b": 2})
        assert env.lookup("a") == 1
        assert env.lookup("b") == 2

    def test_depth(self):
        env = empty_environment()
        assert env.extend("a", 1).extend("b", 2).depth() == 3
