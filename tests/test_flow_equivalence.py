"""The flow-optimization soundness property, CI-gated.

``RunConfig(optimize="flow")`` lets the codegen engine erase monitoring
hooks at statically-unreachable sites and drop REP502-dead monitors from
the per-site dispatch table.  The license for that is an equivalence
theorem: on every program × monitor stack × fault policy, the optimized
run is observably identical to the unoptimized one — answers, monitor
reports, ``RunMetrics`` counters, and fault records.  This suite states
the theorem over random ``L_lambda`` and ``L_imp`` programs.

It also checks the erasure is *proof-driven*: a monitor is dropped only
when no reachable site can trigger it, witnessed by the unoptimized run
never moving that monitor off its initial state.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_flow
from repro.languages import imperative, strict
from repro.monitoring.derive import run_monitored
from repro.monitoring.faults import FlakyMonitor
from repro.monitors import LabelCounterMonitor, ProfilerMonitor, TracerMonitor
from repro.observability import RunMetrics
from repro.partial_eval.imp_codegen import generate_imp_program
from repro.runtime import RunConfig

from tests.generators import closed_program
from tests.test_imp_properties import closed_imp_program

#: Monitor-stack builders (fresh instances per run: tracer state is
#: mutable-adjacent and flaky monitors carry call counters).
STACKS = {
    "count": lambda: [LabelCounterMonitor()],
    "trace": lambda: [TracerMonitor()],
    "count+trace": lambda: [LabelCounterMonitor(), TracerMonitor()],
}


def _run(program, make_stack, **config):
    return run_monitored(
        strict, program, make_stack(), config=RunConfig(**config)
    )


@settings(max_examples=60, deadline=None)
@given(closed_program(), st.sampled_from(sorted(STACKS)))
def test_flow_codegen_equals_unoptimized_codegen(program, stack_name):
    make_stack = STACKS[stack_name]
    plain = _run(program, make_stack, engine="codegen")
    flowed = _run(program, make_stack, engine="codegen", optimize="flow")
    assert flowed.answer == plain.answer
    assert flowed.reports() == plain.reports()


@settings(max_examples=40, deadline=None)
@given(closed_program(), st.sampled_from(sorted(STACKS)))
def test_flow_codegen_equals_reference(program, stack_name):
    make_stack = STACKS[stack_name]
    reference = _run(program, make_stack, engine="reference")
    flowed = _run(program, make_stack, engine="codegen", optimize="flow")
    assert flowed.answer == reference.answer
    assert flowed.reports() == reference.reports()


@settings(max_examples=30, deadline=None)
@given(closed_program())
def test_flow_preserves_run_metrics(program):
    counters = {}
    for optimize in ("none", "flow"):
        result = run_monitored(
            strict,
            program,
            [LabelCounterMonitor()],
            config=RunConfig(
                engine="codegen", optimize=optimize, metrics=RunMetrics()
            ),
        )
        counters[optimize] = (
            result.metrics.steps,
            result.metrics.applications,
        )
    assert counters["none"] == counters["flow"]


@settings(max_examples=40, deadline=None)
@given(
    closed_program(),
    st.sampled_from(["quarantine", "log"]),
    st.integers(1, 4),
)
def test_flow_preserves_fault_records(program, policy, fail_on):
    results = {}
    for optimize in ("none", "flow"):
        results[optimize] = run_monitored(
            strict,
            program,
            [FlakyMonitor(LabelCounterMonitor(), fail_on=fail_on)],
            config=RunConfig(
                engine="codegen", optimize=optimize, fault_policy=policy
            ),
        )
    plain, flowed = results["none"], results["flow"]
    assert flowed.answer == plain.answer
    assert flowed.faults == plain.faults
    assert flowed.quarantined_keys() == plain.quarantined_keys()
    assert flowed.reports() == plain.reports()


@settings(max_examples=40, deadline=None)
@given(closed_program())
def test_dead_monitors_erased_only_when_proven(program):
    # Every monitor the analysis calls dead must be observably inert in
    # the *unoptimized* reference run: erasure never guesses.
    stack = [LabelCounterMonitor(), TracerMonitor()]
    flow = analyze_flow(program, stack)
    if not flow.dead_monitors:
        return
    result = run_monitored(strict, program, [LabelCounterMonitor(), TracerMonitor()])
    for monitor in stack:
        if monitor.key in flow.dead_monitors:
            untouched = monitor.report(monitor.initial_state())
            assert result.reports()[monitor.key] == untouched


@settings(max_examples=50, deadline=None)
@given(closed_imp_program())
def test_imp_flow_residual_parity(program):
    stack = [LabelCounterMonitor()]
    flow = analyze_flow(program, stack)
    plain = generate_imp_program(program, stack)
    flowed = generate_imp_program(program, stack, flow=flow)
    plain_answer, plain_states = plain.run()
    flowed_answer, flowed_states = flowed.run()
    assert flowed_answer == plain_answer
    assert flowed_states.get("count") == plain_states.get("count")
    # ... and both agree with the reference interpreter.
    interp = run_monitored(
        imperative,
        program,
        LabelCounterMonitor(),
        config=RunConfig(max_steps=1_000_000),
    )
    assert flowed_answer == interp.answer
    assert flowed_states.get("count") == interp.state_of("count")


@settings(max_examples=25, deadline=None)
@given(closed_program())
def test_record_static_filter_folds_identically(program):
    from repro.tracing import analyze_trace, record

    folds = {}
    with tempfile.TemporaryDirectory() as tmp:
        for optimize in ("none", "flow"):
            path = os.path.join(tmp, f"trace-{optimize}.jsonl")
            record(
                strict,
                program,
                path,
                monitors=[LabelCounterMonitor()],
                config=RunConfig(optimize=optimize),
            )
            folds[optimize] = analyze_trace(
                path, [LabelCounterMonitor()], program=program
            )
    assert folds["flow"].answer == folds["none"].answer
    assert folds["flow"].reports() == folds["none"].reports()
