"""A meta-circular stress test: L_lambda interpreting L_lambda.

An interpreter for a core of ``L_lambda`` (constants, variables, lambda,
application, conditionals, arithmetic), written *in* ``L_lambda`` with
environments as association lists and object terms encoded as nested
lists:

    [0, n]          constant n
    [1, name]       variable (names are ints)
    [2, name, body] lambda
    [3, f, a]       application
    [4, c, t, e]    if
    [5, l, r]       addition
    [6, l, r]       subtraction
    [7, l, r]       equality test

Closures are *host* (meta-level) functions — the object-level lambda
becomes a meta-level lambda — so the encoded interpreter genuinely
exercises higher-order evaluation, and monitoring the interpreter's
``eval`` observes object-program structure through one level of
interpretation.
"""

import pytest

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import ProfilerMonitor
from repro.partial_eval.codegen import generate_program
from repro.syntax.parser import parse

SELF_INTERPRETER = """
letrec lookup = lambda name. lambda env.
    if hd (hd env) = name then hd (tl (hd env)) else lookup name (tl env)
and eval = lambda t. lambda env.
    {eval}: (
    if hd t = 0 then hd (tl t)
    else if hd t = 1 then lookup (hd (tl t)) env
    else if hd t = 2 then
        (lambda v. eval (hd (tl (tl t))) (((hd (tl t)) :: (v :: [])) :: env))
    else if hd t = 3 then (eval (hd (tl t)) env) (eval (hd (tl (tl t))) env)
    else if hd t = 4 then
        (if eval (hd (tl t)) env
         then eval (hd (tl (tl t))) env
         else eval (hd (tl (tl (tl t)))) env)
    else if hd t = 5 then (eval (hd (tl t)) env) + (eval (hd (tl (tl t))) env)
    else if hd t = 6 then (eval (hd (tl t)) env) - (eval (hd (tl (tl t))) env)
    else (eval (hd (tl t)) env) = (eval (hd (tl (tl t))) env))
in eval %s []
"""

# Object program: ((lambda x. x + x) 21)  — encoded.
DOUBLE_21 = "[3, [2, 0, [5, [1, 0], [1, 0]]], [0, 21]]"

# Object program: (lambda f. f (f 3)) (lambda x. x + 1)
TWICE_SUCC = (
    "[3, [3, [2, 9, [2, 0, [3, [1, 9], [3, [1, 9], [1, 0]]]]],"
    " [2, 1, [5, [1, 1], [0, 1]]]], [0, 3]]"
)

# Object program: if (0 = 0) then 10 else 20
IF_TEST = "[4, [7, [0, 0], [0, 0]], [0, 10], [0, 20]]"


def interp(encoded: str):
    return parse(SELF_INTERPRETER % encoded)


class TestSelfInterpretation:
    def test_double(self):
        assert strict.evaluate(interp(DOUBLE_21)) == 42

    def test_higher_order(self):
        assert strict.evaluate(interp(TWICE_SUCC)) == 5

    def test_conditional(self):
        assert strict.evaluate(interp(IF_TEST)) == 10

    def test_object_level_shadowing(self):
        # (lambda x. (lambda x. x) 2) 1  -> 2
        encoded = "[3, [2, 0, [3, [2, 0, [1, 0]], [0, 2]]], [0, 1]]"
        assert strict.evaluate(interp(encoded)) == 2


class TestMonitoringTheInterpreter:
    def test_eval_counts_object_nodes(self):
        result = run_monitored(strict, interp(DOUBLE_21), ProfilerMonitor())
        assert result.answer == 42
        # app + lambda + const + (body: add + var + var) = 6 eval calls.
        assert result.report() == {"eval": 6}

    def test_residual_interpreter_parity(self):
        program = interp(TWICE_SUCC)
        interp_result = run_monitored(strict, program, ProfilerMonitor())
        generated = generate_program(program, ProfilerMonitor())
        assert generated.evaluate() == 5
        assert generated.report("profile") == interp_result.report()


class TestTwoLevelsDeep:
    def test_monitored_interpreter_interpreting_recursion(self):
        # Object-level: ((lambda f. ...) fixpointless loop is hard without
        # letrec in the object language; use nested application depth
        # instead: (((lambda x. lambda y. x + y) 1) 2)
        encoded = "[3, [3, [2, 0, [2, 1, [5, [1, 0], [1, 1]]]], [0, 1]], [0, 2]]"
        result = run_monitored(strict, interp(encoded), ProfilerMonitor())
        assert result.answer == 3
        assert result.report()["eval"] == 9
