"""Cross-checks between the literal denotational semantics and the machine."""

import pytest

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import CollectingMonitor, LabelCounterMonitor, ProfilerMonitor
from repro.semantics.answers import string_answers, theta, theta_inverse
from repro.semantics.denotational import run_denotational
from repro.syntax.parser import parse


class TestStandardAgreement:
    def test_corpus_agreement(self, corpus_case):
        program, expected = corpus_case
        answer, state = run_denotational(program)
        assert answer == expected
        assert state is None

    def test_answer_is_pair(self):
        answer, state = run_denotational(parse("1 + 1"))
        assert (answer, state) == (2, None)

    def test_string_answer_algebra(self):
        answer, _ = run_denotational(parse("2 + 2"), answers=string_answers())
        assert answer == "The result is: 4"


class TestMonitoredAgreement:
    def test_profiler_agrees_with_machine(self, paper_profiler_program):
        monitor = ProfilerMonitor()
        den_answer, den_state = run_denotational(paper_profiler_program, monitor)
        machine = run_monitored(strict, paper_profiler_program, monitor)
        assert den_answer == machine.answer
        assert den_state == machine.state_of(monitor)

    def test_collecting_agrees_with_machine(self, paper_collecting_program):
        monitor = CollectingMonitor()
        den_answer, den_state = run_denotational(paper_collecting_program, monitor)
        machine = run_monitored(strict, paper_collecting_program, monitor)
        assert den_answer == machine.answer
        assert monitor.report(den_state) == machine.report()

    def test_counter_agrees(self, paper_counter_program):
        monitor = LabelCounterMonitor()
        den_answer, den_state = run_denotational(paper_counter_program, monitor)
        assert den_answer == 120
        assert den_state == {"A": 1, "B": 5}


class TestTheta:
    """Definition 4.1's answer transformer and its inverse."""

    def test_theta_pairs(self):
        lifted = theta(42)
        assert lifted("sigma") == (42, "sigma")

    def test_theta_inverse(self):
        assert theta_inverse(theta(42)) == 42

    def test_theta_inverse_ignores_sigma(self):
        assert theta_inverse(theta("x"), sigma=object()) == "x"


class TestErrors:
    def test_errors_agree_with_machine(self):
        program = parse("hd []")
        with pytest.raises(Exception) as den_exc:
            run_denotational(program)
        with pytest.raises(Exception) as machine_exc:
            strict.evaluate(program)
        assert type(den_exc.value) is type(machine_exc.value)
