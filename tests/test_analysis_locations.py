"""Regression tests: syntax errors always carry a real source location.

Annotation parsing and letrec desugaring used to raise ``ParseError``
with ``NO_LOCATION``, leaving the CLI (and now ``repro check``) unable
to point at the offending token.  These tests pin the precise line and
column for every error path in ``parse_annotation_text`` and the letrec
binding validation — including annotations that span multiple lines.
"""

import pytest

from repro.errors import NO_LOCATION, ParseError, SourceLocation
from repro.syntax.annotations import parse_annotation_text
from repro.syntax.parser import parse


def _error(source):
    with pytest.raises(ParseError) as info:
        parse(source)
    return info.value


class TestAnnotationErrorLocations:
    def test_empty_annotation(self):
        exc = _error("let x = {}: 1 in x")
        assert (exc.location.line, exc.location.column) == (1, 10)

    def test_invalid_fnheader_parameter(self):
        exc = _error("let x = {f(x, 2bad)}: 1 in x")
        # Points at the bad parameter itself, not the annotation start.
        assert (exc.location.line, exc.location.column) == (1, 15)
        assert "2bad" in str(exc)

    def test_multiline_annotation_parameter(self):
        exc = _error("let x = {trace:\n  mul(x, 2bad)}: 1 in x")
        assert (exc.location.line, exc.location.column) == (2, 10)

    def test_unrecognized_annotation_syntax(self):
        exc = _error("{???}: 1")
        assert (exc.location.line, exc.location.column) == (1, 2)

    def test_trailing_comma_parameter_rejected_with_location(self):
        exc = _error("{f(x,)}: 1")
        assert exc.location is not NO_LOCATION
        assert exc.location.line == 1

    def test_parse_annotation_text_direct(self):
        base = SourceLocation(line=3, column=7, offset=20)
        with pytest.raises(ParseError) as info:
            parse_annotation_text("g(1bad)", base)
        loc = info.value.location
        assert loc.line == 3
        assert loc.column > 7  # inside the annotation, not at its head

    def test_parse_annotation_text_defaults_still_locate(self):
        # Even with no explicit base the error is never NO_LOCATION-free:
        # it degrades to the annotation-relative position.
        with pytest.raises(ParseError) as info:
            parse_annotation_text("")
        assert "empty annotation" in str(info.value)

    @pytest.mark.parametrize(
        "source",
        [
            "{p}: 1",
            "{f(x, y)}: lambda x. lambda y. x + y",
            "{f()}: lambda x. x",
            "{trace: f(n)}: letrec f = lambda n. n in f 1",
            "let x = {watch}:\n  1 in x",
        ],
    )
    def test_valid_annotations_still_parse(self, source):
        parse(source)


class TestLetrecErrorLocations:
    def test_non_lambda_binding(self):
        exc = _error("letrec f = 5 in f")
        assert (exc.location.line, exc.location.column) == (1, 12)
        assert "must bind a lambda abstraction" in str(exc)
        assert "Const" in str(exc)

    def test_second_binding_flagged_at_its_own_position(self):
        exc = _error("letrec f = lambda x. x and g = 7 in f 1")
        assert (exc.location.line, exc.location.column) == (1, 32)
        assert "'g'" in str(exc)

    def test_multiline_letrec(self):
        exc = _error("letrec f = lambda x. x\nand g = 1 + 2\nin f 1")
        assert exc.location.line == 2

    def test_annotated_lambda_binding_accepted(self):
        program = parse("letrec f = {p}: lambda x. x in f 1")
        assert program is not None

    def test_valid_mutual_recursion_still_parses(self):
        parse(
            "letrec even = lambda n. if n = 0 then true else odd (n - 1) "
            "and odd = lambda n. if n = 0 then false else even (n - 1) "
            "in even 6"
        )
