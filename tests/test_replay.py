"""The replay suite: checkpointed seeks are the straight fold, bit for bit.

A :class:`~repro.replay.session.ReplaySession` claims to be
``analyze_trace`` with a cursor — restoring a checkpoint and folding the
gap must land on exactly the state the one-pass fold reaches.  These
tests make that a property (hypothesis-generated programs, recorded
under every engine the language supports, seeked to every checkpoint
boundary), pin the scripted ``repro replay`` transcript to a golden, and
cover the satellites: v2 ``input``/``deadline`` records, the ``REP401``
history-overflow diagnostic, the :class:`DebugResult` wire format, and
the deprecation of loose per-option keywords.
"""

import json
import os
import tempfile
import warnings

import pytest
from hypothesis import given, settings

from repro.cli import main
from repro.errors import EvaluationTimeout
from repro.languages.imperative import imperative
from repro.languages.strict import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import HistoryMonitor, ProfilerMonitor
from repro.monitors.interactive import DebugResult, debug
from repro.observability import RunMetrics
from repro.replay import (
    HISTORY_KEY,
    ReplayDebugger,
    ReplaySession,
    default_stack,
    sidecar_path,
)
from repro.runtime import RunConfig
from repro.syntax.parser import parse
from repro.tracing import analyze_trace, read_trace
from repro.tracing.record import record

from tests.generators import closed_program
from tests.test_imp_properties import closed_imp_program

FAC = (
    "letrec fac = lambda x. {fac(x)}: "
    "if x = 0 then 1 else x * fac (x - 1) in fac 5"
)
LOOP = "letrec loop = lambda x. {loop}: loop (x + 1) in loop 0"

ENGINES = ("reference", "compiled", "codegen")


def _record_tmp(language, program, *, engine="reference"):
    """Record ``program`` into a throwaway path (hypothesis-safe)."""
    handle, path = tempfile.mkstemp(suffix=".jsonl", prefix="replay-")
    os.close(handle)
    record(
        language,
        program,
        path,
        config=RunConfig(engine=engine, metrics=RunMetrics()),
    )
    return path


def _stack():
    return [HistoryMonitor(64, key=HISTORY_KEY)]


def _imp_stack():
    # HistoryMonitor renders every observed value; imperative stores are
    # not renderable, so the L_imp property folds a counting monitor.
    from repro.monitors import LabelCounterMonitor

    return [LabelCounterMonitor()]


def assert_seeks_match_straight_fold(path, *, interval=3, stack=_stack):
    """Every checkpoint-boundary seek equals a from-scratch fold."""
    session = ReplaySession(
        path, stack(), checkpoint_interval=interval, metrics=True
    )
    total = len(session)
    session.seek(total)  # populate the checkpoint index on the way out
    positions = sorted(
        {0, total, *range(interval, total + 1, interval)}
    )
    for position in positions:
        session.seek(position)  # backward: restored from a checkpoint
        fresh = ReplaySession(
            path, stack(), checkpoint_interval=10**9, metrics=True
        )
        fresh.seek(position)  # forward only: the straight-line fold
        for key in session.states.keys():
            assert session.states.get(key) == fresh.states.get(key), (
                f"state {key!r} diverged at position {position}"
            )
        assert session.metrics == fresh.metrics, (
            f"metrics diverged at position {position}"
        )
    return session


class TestCheckpointEquivalence:
    """The tentpole property, engine by engine and language by language."""

    @pytest.mark.parametrize("engine", ENGINES)
    @settings(max_examples=15, deadline=None)
    @given(program=closed_program())
    def test_lambda_seeks_match_fold(self, engine, program):
        path = _record_tmp(strict, program, engine=engine)
        try:
            assert_seeks_match_straight_fold(path)
        finally:
            os.unlink(path)

    @settings(max_examples=15, deadline=None)
    @given(program=closed_imp_program())
    def test_imp_seeks_match_fold(self, program):
        path = _record_tmp(imperative, program)
        try:
            assert_seeks_match_straight_fold(path, stack=_imp_stack)
        finally:
            os.unlink(path)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_analysis_equals_analyze_trace(self, tmp_path, engine):
        path = str(tmp_path / "t.jsonl")
        record(
            strict,
            parse(FAC),
            path,
            config=RunConfig(engine=engine, metrics=RunMetrics()),
        )
        session = ReplaySession(
            path, _stack(), checkpoint_interval=3, metrics=True
        )
        via_session = session.analysis()
        via_fold = analyze_trace(path, _stack(), metrics=True)
        assert via_session.answer == via_fold.answer
        assert (
            via_session.states.get(HISTORY_KEY)
            == via_fold.states.get(HISTORY_KEY)
        )
        assert via_session.metrics == via_fold.metrics

    def test_seek_clamps_and_is_idempotent(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        record(strict, parse(FAC), path)
        session = ReplaySession(path, _stack(), checkpoint_interval=3)
        assert session.seek(10**9) == len(session)
        state_at_end = session.states.get(HISTORY_KEY)
        assert session.seek(-5) == 0
        assert session.seek(len(session)) == len(session)
        assert session.states.get(HISTORY_KEY) == state_at_end


class TestSidecar:
    def test_roundtrip_skips_refolding(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        record(strict, parse(FAC), path)
        first = ReplaySession(
            path, _stack(), checkpoint_interval=3, use_sidecar=True
        )
        first.seek(len(first))
        assert first.save_checkpoints()
        assert os.path.exists(sidecar_path(path))

        second = ReplaySession(
            path, _stack(), checkpoint_interval=3, use_sidecar=True
        )
        # The index arrived pre-populated: a backward-looking seek finds
        # a checkpoint even though this session never folded past it.
        assert second.checkpoints.nearest(len(second)).position > 0
        second.seek(5)
        fresh = ReplaySession(path, _stack(), checkpoint_interval=10**9)
        fresh.seek(5)
        assert second.states.get(HISTORY_KEY) == fresh.states.get(HISTORY_KEY)

    def test_corrupt_sidecar_is_ignored(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        record(strict, parse(FAC), path)
        with open(sidecar_path(path), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        session = ReplaySession(
            path, _stack(), checkpoint_interval=3, use_sidecar=True
        )
        session.seek(len(session))
        assert session.analysis().answer == 120

    def test_stack_mismatch_rebuilds(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        record(strict, parse(FAC), path)
        first = ReplaySession(
            path, _stack(), checkpoint_interval=3, use_sidecar=True
        )
        first.seek(len(first))
        first.save_checkpoints()
        # A different monitor stack must not adopt the stale checkpoints.
        other = ReplaySession(
            path,
            [ProfilerMonitor()],
            checkpoint_interval=3,
            use_sidecar=True,
        )
        stale = other.checkpoints.nearest(len(other))
        assert stale is None or stale.position == 0


class TestTimeTravelDebugger:
    def _session(self, tmp_path, source=FAC, interval=3, capacity=64):
        path = str(tmp_path / "t.jsonl")
        record(strict, parse(source), path)
        return ReplaySession(
            path,
            default_stack(capacity=capacity),
            checkpoint_interval=interval,
        )

    def _run(self, session, script, **kwargs):
        debugger = ReplayDebugger(session, script=script, **kwargs)
        return debugger, debugger.run()

    def test_back_returns_to_previous_activation(self, tmp_path):
        session = self._session(tmp_path)
        _, transcript = self._run(
            session, ["step", "step", "back", "print x", "quit"]
        )
        assert "back at fac (event 2 of 12)" in transcript
        assert "x = 4" in transcript

    def test_goto_and_rewind(self, tmp_path):
        session = self._session(tmp_path)
        _, transcript = self._run(
            session, ["goto 8", "rewind", "quit"]
        )
        assert "at event 8:" in transcript
        assert "rewound to the start of the trace" in transcript

    def test_when_was_finds_the_event(self, tmp_path):
        session = self._session(tmp_path)
        _, transcript = self._run(session, ["when-was fac = 6", "quit"])
        assert "when-was: fac = 6 at event" in transcript

    def test_value_at_numbers_activations(self, tmp_path):
        session = self._session(tmp_path)
        _, transcript = self._run(session, ["value-at fac 1", "quit"])
        assert "value-at: fac activation 1 = 1" in transcript

    def test_omniscient_overflow_carries_rep401(self, tmp_path):
        session = self._session(tmp_path, capacity=2)
        debugger, transcript = self._run(
            session, ["when-was fac = 6", "quit"]
        )
        assert "warning[REP401]" in transcript
        assert any(d.code == "REP401" for d in debugger.diagnostics)
        assert all(d.severity == "warning" for d in debugger.diagnostics)

    def test_ample_capacity_has_no_diagnostic(self, tmp_path):
        session = self._session(tmp_path, capacity=64)
        debugger, _ = self._run(session, ["when-was fac = 6", "quit"])
        assert debugger.diagnostics == []

    def test_shared_grammar_rejects_nothing_live_accepts(self, tmp_path):
        # The live debugger's command set is a subset of the replay
        # set: every live command parses and does something post-hoc.
        session = self._session(tmp_path)
        live_commands = [
            "step",
            "print x",
            "vars",
            "where",
            "breakpoints",
            "help",
            "continue",
            "quit",
        ]
        _, transcript = self._run(session, live_commands)
        assert "unknown command" not in transcript


class TestReplayCli:
    def _trace(self, tmp_path, capsys):
        path = str(tmp_path / "fac.jsonl")
        assert main(["record", "-e", FAC, "-o", path]) == 0
        capsys.readouterr()
        return path

    def test_scripted_session_golden(self, tmp_path, capsys, golden):
        path = self._trace(tmp_path, capsys)
        assert (
            main(
                [
                    "replay",
                    path,
                    "--checkpoint-interval",
                    "3",
                    "--command", "step",
                    "--command", "print x",
                    "--command", "where",
                    "--command", "goto 8",
                    "--command", "back",
                    "--command", "events 4",
                    "--command", "when-was fac = 2",
                    "--command", "value-at fac 2",
                    "--command", "rewind",
                    "--command", "continue",
                    "--command", "quit",
                ]
            )
            == 0
        )
        golden("replay_session.txt", capsys.readouterr().out)

    def test_breakpoints_and_finish(self, tmp_path, capsys):
        path = self._trace(tmp_path, capsys)
        assert (
            main(
                [
                    "replay",
                    path,
                    "--break", "fac",
                    "--command", "finish",
                    "--command", "quit",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stopped at fac (event 1 of 12)" in out
        assert "fac returned 120" in out

    def test_sidecar_flag_persists_checkpoints(self, tmp_path, capsys):
        path = self._trace(tmp_path, capsys)
        args = [
            "replay",
            path,
            "--sidecar",
            "--checkpoint-interval",
            "3",
            "--command", "continue",
            "--command", "continue",
            "--command", "continue",
            "--command", "continue",
            "--command", "continue",
            "--command", "quit",
        ]
        assert main(args) == 0
        assert os.path.exists(sidecar_path(path))
        capsys.readouterr()
        assert main(args) == 0  # second run loads the sidecar

    def test_run_flags_are_shared_with_debug(self):
        # Satellite 2: cmd_debug/cmd_replay share add_run_flags — the
        # same spelling parses on both subcommands.
        parser = __import__("repro.cli", fromlist=["build_parser"]).build_parser()
        for subcommand, extra in (
            ("debug", ["-e", FAC]),
            ("replay", ["t.jsonl"]),
        ):
            args = parser.parse_args(
                [
                    subcommand,
                    *extra,
                    "--break", "fac",
                    "--command", "quit",
                    "--checkpoint-interval", "7",
                    "--fault-policy", "log",
                    "--max-steps", "100",
                ]
            )
            assert args.checkpoint_interval == 7
            assert args.breakpoints == ["fac"]


class TestRecordedDebugSessions:
    """v2 ``input`` records: a live session becomes a replayable trace."""

    def test_commands_become_input_records(self, tmp_path):
        script = ["step", "print x", "continue", "quit"]
        result = debug(
            parse(FAC),
            script=script,
            source=lambda: None,
            output=lambda line: None,
            config=RunConfig(mode="record", record_dir=str(tmp_path)),
        )
        assert result.trace is not None
        trace = read_trace(result.trace)
        consumed = trace.commands()
        assert consumed[: len(script)] == script[: len(consumed)]
        assert consumed  # at least one command was consumed and recorded
        # input positions are within the event stream
        assert all(0 <= i.pos <= len(trace.events) for i in trace.inputs)

    def test_recorded_session_replays(self, tmp_path):
        result = debug(
            parse(FAC),
            script=["continue", "quit"],
            source=lambda: None,
            output=lambda line: None,
            config=RunConfig(mode="record", record_dir=str(tmp_path)),
        )
        session = ReplaySession(
            result.trace, default_stack(), checkpoint_interval=3
        )
        assert session.analysis().answer == 120

    def test_debug_without_record_dir_is_an_error(self):
        from repro.tracing.schema import TraceError

        with pytest.raises(TraceError):
            debug(
                parse(FAC),
                script=["quit"],
                source=lambda: None,
                output=lambda line: None,
                config=RunConfig(mode="record"),
            )


class TestDeadlineRecords:
    """v2 ``deadline`` records: a timed-out run is complete, not broken."""

    def _timed_out_trace(self, tmp_path):
        path = str(tmp_path / "loop.jsonl")
        with pytest.raises(EvaluationTimeout):
            record(
                strict,
                parse(LOOP),
                path,
                config=RunConfig(timeout=0.05),
            )
        return path

    def test_deadline_marks_complete_not_truncated(self, tmp_path):
        path = self._timed_out_trace(tmp_path)
        trace = read_trace(path)  # no allow_truncated needed
        assert trace.timed_out
        assert not trace.truncated
        assert trace.deadline["events"] == len(trace.events)

    def test_timed_out_trace_replays_to_its_deadline(self, tmp_path):
        path = self._timed_out_trace(tmp_path)
        session = ReplaySession(path, _stack(), checkpoint_interval=16)
        session.seek(len(session))
        assert session.position == len(session.trace.events)
        debugger = ReplayDebugger(session, script=["continue", "quit"])
        transcript = debugger.run()
        assert "run timed out after" in transcript


class TestDebugResultWire:
    def _result(self):
        return debug(
            parse(FAC),
            script=["step", "print x", "continue", "quit"],
            source=lambda: None,
            output=lambda line: None,
        )

    def test_roundtrip(self):
        result = self._result()
        wire = result.to_dict()
        back = DebugResult.from_dict(wire)
        assert back.ok == result.ok
        # ``to_dict`` renders the answer for the wire, like RunResult.
        assert back.answer in (120, "120")
        assert back.transcript == result.transcript
        assert back.stops == result.stops
        assert back.duration == result.duration
        assert back.monitored is None

    def test_wire_is_json_and_run_result_shaped(self):
        wire = self._result().to_dict()
        json.dumps(wire)  # serializable end to end
        # The RunResult conventions: ok/answer/reports/duration present.
        assert set(("ok", "answer", "reports", "duration")) <= set(wire)
        assert wire["reports"]["debug"] == self._result().transcript

    def test_report_spelling_still_works(self):
        result = self._result()
        assert result.report() == result.transcript
        assert result.healthy()


class TestDeprecatedKwargs:
    def test_run_monitored_loose_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="run_monitored"):
            run_monitored(
                strict, parse(FAC), [ProfilerMonitor()], engine="reference"
            )

    def test_debug_loose_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="debug"):
            debug(
                parse(FAC),
                script=["quit"],
                source=lambda: None,
                output=lambda line: None,
                max_steps=100_000,
            )

    def test_config_path_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_monitored(
                strict,
                parse(FAC),
                [ProfilerMonitor()],
                config=RunConfig(engine="reference"),
            )
            debug(
                parse(FAC),
                script=["quit"],
                source=lambda: None,
                output=lambda line: None,
                config=RunConfig(max_steps=100_000),
            )

    def test_internal_callers_stay_off_the_legacy_path(self):
        # The acceptance bar: importing and exercising the public
        # entry points with config= must never warn from inside repro.
        from repro.monitoring.validate import assert_valid_monitor
        from repro.toolbox import evaluate

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert_valid_monitor(ProfilerMonitor())
            evaluate("profile", FAC, config=RunConfig())


class TestCheckpointIntervalConfig:
    def test_default_and_override(self):
        assert RunConfig().checkpoint_interval == 512
        assert RunConfig(checkpoint_interval=8).checkpoint_interval == 8

    @pytest.mark.parametrize("bad", [0, -3, True, 2.5, "16"])
    def test_invalid_interval_rejected(self, bad):
        with pytest.raises(Exception):
            RunConfig(checkpoint_interval=bad).validate()
