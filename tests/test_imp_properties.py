"""Property tests for L_imp: random programs, interpreter vs residual parity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.languages.imperative import (
    AnnotatedCmd,
    Assign,
    Emit,
    IfC,
    Seq,
    Skip,
    While,
    binop,
    const,
    imperative,
    var,
)
from repro.monitoring.derive import run_monitored
from repro.monitors import LabelCounterMonitor
from repro.partial_eval.imp_codegen import generate_imp_program
from repro.syntax.annotations import Label

#: A small fixed variable universe; programs initialize before use.
VARIABLES = ("a", "b", "c")


@st.composite
def int_expr(draw, depth: int = 2):
    if depth <= 0:
        if draw(st.booleans()):
            return const(draw(st.integers(-9, 9)))
        return var(draw(st.sampled_from(VARIABLES)))
    op = draw(st.sampled_from(["+", "-", "*", "min", "max"]))
    left = draw(int_expr(depth - 1))
    right = draw(int_expr(depth - 1))
    if op in ("min", "max"):
        from repro.syntax.ast import App, Var as EVar

        return App(App(EVar(op), left), right)
    return binop(op, left, right)


@st.composite
def bool_expr(draw):
    op = draw(st.sampled_from(["<", "<=", "=", ">", ">="]))
    return binop(op, draw(int_expr(1)), draw(int_expr(1)))


@st.composite
def command(draw, depth: int = 3):
    if depth <= 0:
        kind = draw(st.sampled_from(["assign", "skip", "emit"]))
    else:
        kind = draw(
            st.sampled_from(["assign", "skip", "emit", "seq", "if", "while", "annot"])
        )
    if kind == "assign":
        return Assign(draw(st.sampled_from(VARIABLES)), draw(int_expr(2)))
    if kind == "skip":
        return Skip()
    if kind == "emit":
        return Emit(draw(int_expr(1)))
    if kind == "seq":
        return Seq(draw(command(depth - 1)), draw(command(depth - 1)))
    if kind == "if":
        return IfC(
            draw(bool_expr()), draw(command(depth - 1)), draw(command(depth - 1))
        )
    if kind == "while":
        # A guaranteed-terminating counted loop.  The counter lives
        # outside the random body's variable universe (bodies only assign
        # a/b/c), and nesting depth gives nested loops distinct counters.
        counter = f"k{depth}"
        bound = draw(st.integers(0, 4))
        body = Seq(
            draw(command(depth - 1)),
            Assign(counter, binop("+", var(counter), const(1))),
        )
        return Seq(
            Assign(counter, const(0)),
            While(binop("<", var(counter), const(bound)), body),
        )
    if kind == "annot":
        label = draw(st.sampled_from(["p", "q"]))
        return AnnotatedCmd(Label(label), draw(command(depth - 1)))
    raise AssertionError(kind)


@st.composite
def closed_imp_program(draw):
    # Initialize every variable so expressions never hit unbound names.
    init = Seq(
        Assign("a", const(draw(st.integers(-5, 5)))),
        Seq(
            Assign("b", const(draw(st.integers(-5, 5)))),
            Assign("c", const(draw(st.integers(-5, 5)))),
        ),
    )
    return Seq(init, draw(command(3)))


@settings(max_examples=80, deadline=None)
@given(closed_imp_program())
def test_residual_imp_parity(program):
    expected = imperative.run_to_store(program, max_steps=1_000_000)
    assert generate_imp_program(program).evaluate() == expected


@settings(max_examples=60, deadline=None)
@given(closed_imp_program())
def test_imp_monitoring_soundness(program):
    plain = imperative.run_to_store(program, max_steps=1_000_000)
    monitored = run_monitored(
        imperative, program, LabelCounterMonitor(), max_steps=1_000_000
    )
    assert monitored.answer == plain


@settings(max_examples=80, deadline=None)
@given(closed_imp_program())
def test_imp_pretty_parse_roundtrip(program):
    from repro.languages.imp_syntax import parse_imp, pretty_imp
    from repro.languages.imperative import normalize_seq

    # ';' is associative: round-tripping preserves the program up to
    # sequence re-association.
    assert normalize_seq(parse_imp(pretty_imp(program))) == normalize_seq(program)


@settings(max_examples=60, deadline=None)
@given(closed_imp_program())
def test_imp_residual_monitor_parity(program):
    interp = run_monitored(
        imperative, program, LabelCounterMonitor(), max_steps=1_000_000
    )
    generated = generate_imp_program(program, LabelCounterMonitor())
    (bindings, output), states = generated.run()
    assert (bindings, output) == interp.answer
    assert states.get("count") == interp.state_of("count")
