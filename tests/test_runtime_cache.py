"""The compiled-program cache: correctness of hits, keys, LRU, threads.

The cache is only allowed to be a *performance* artifact: a warm hit must
be observationally identical to a cold compile, across monitor stacks,
fault policies and engines.  These tests pin that, plus the key
discrimination that makes it sound and the LRU bound that makes it safe
to leave running.
"""

import threading

import pytest

from repro.languages.strict import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import ProfilerMonitor, TracerMonitor
from repro.observability import InMemorySink
from repro.runtime import CompilationCache, RunConfig, cache_key, program_fingerprint
from repro.syntax.parser import parse

FAC = "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac 5"


class TestCacheKey:
    def test_fingerprint_stable_across_parses(self):
        assert program_fingerprint(parse(FAC)) == program_fingerprint(parse(FAC))

    def test_fingerprint_distinguishes_programs(self):
        assert program_fingerprint(parse("1 + 1")) != program_fingerprint(parse("1 + 2"))

    def test_key_distinguishes_monitor_stacks(self):
        program = parse(FAC)
        prof = cache_key(strict, program, [ProfilerMonitor()])
        trace = cache_key(strict, program, [TracerMonitor()])
        both = cache_key(strict, program, [ProfilerMonitor(), TracerMonitor()])
        assert len({prof, trace, both}) == 3

    def test_key_identical_for_equal_spec_instances(self):
        # Two freshly built profilers with the same configuration must
        # share cache entries — that is the point of structural identity.
        program = parse(FAC)
        a = cache_key(strict, program, [ProfilerMonitor(namespace="p")])
        b = cache_key(strict, program, [ProfilerMonitor(namespace="p")])
        assert a == b

    def test_key_distinguishes_fault_policies(self):
        program = parse(FAC)
        keys = {
            cache_key(strict, program, [], fault_policy=policy)
            for policy in ("propagate", "quarantine", "log")
        }
        assert len(keys) == 3

    def test_key_distinguishes_counted_mode(self):
        program = parse(FAC)
        assert cache_key(strict, program, [], counted=True) != cache_key(
            strict, program, [], counted=False
        )


class TestGetOrCompile:
    def test_warm_hit_returns_same_object(self):
        cache = CompilationCache(4)
        program = parse(FAC)
        cold = cache.get_or_compile(strict, program, [ProfilerMonitor()])
        warm = cache.get_or_compile(strict, program, [ProfilerMonitor()])
        assert warm is cold
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_counted_mode_rejected(self):
        cache = CompilationCache(4)
        with pytest.raises(ValueError, match="counted"):
            cache.get_or_compile(strict, parse("1 + 1"), [], counted=True)

    def test_lru_eviction_bounds_size(self):
        cache = CompilationCache(2)
        programs = [parse(f"1 + {n}") for n in range(3)]
        for program in programs:
            cache.get_or_compile(strict, program, [])
        stats = cache.stats()
        assert stats.size == 2 and stats.evictions == 1
        # The oldest entry is gone: asking again is a miss, not a hit.
        cache.get_or_compile(strict, programs[0], [])
        assert cache.stats().hits == 0

    def test_lru_recency_updated_on_hit(self):
        cache = CompilationCache(2)
        a, b, c = (parse(f"2 + {n}") for n in range(3))
        cache.get_or_compile(strict, a, [])
        cache.get_or_compile(strict, b, [])
        cache.get_or_compile(strict, a, [])  # refresh a
        cache.get_or_compile(strict, c, [])  # evicts b, not a
        assert cache.get_or_compile(strict, a, []) is not None
        assert cache.stats().hits == 2  # the refresh + the final a lookup

    def test_concurrent_lookups_compile_once(self):
        cache = CompilationCache(4)
        program = parse(FAC)
        barrier = threading.Barrier(8)
        results = []

        def worker():
            barrier.wait()
            results.append(cache.get_or_compile(strict, program, []))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(map(id, results))) == 1
        assert cache.stats().misses == 1

    def test_clear(self):
        cache = CompilationCache(4)
        cache.get_or_compile(strict, parse("1 + 1"), [])
        cache.clear()
        assert len(cache) == 0


class TestCacheObservability:
    def test_events_on_the_stream(self):
        sink = InMemorySink()
        cache = CompilationCache(1, event_sink=sink)
        cache.get_or_compile(strict, parse("1 + 1"), [])      # miss
        cache.get_or_compile(strict, parse("1 + 1"), [])      # hit
        cache.get_or_compile(strict, parse("2 + 2"), [])      # miss + evict
        kinds = [event.type for event in sink.events]
        assert kinds == ["cache-miss", "cache-hit", "cache-miss", "cache-evict"]
        miss = sink.of_type("cache-miss")[0]
        assert "key" in miss.payload and miss.payload["compile_time"] >= 0

    def test_replay_reconstructs_cache_counters(self):
        from repro.observability import replay

        sink = InMemorySink()
        cache = CompilationCache(1, event_sink=sink)
        cache.get_or_compile(strict, parse("1 + 1"), [])
        cache.get_or_compile(strict, parse("1 + 1"), [])
        cache.get_or_compile(strict, parse("2 + 2"), [])
        summary = replay(sink.events)
        stats = cache.stats()
        assert summary.cache_hits == stats.hits == 1
        assert summary.cache_misses == stats.misses == 2
        assert summary.cache_evictions == stats.evictions == 1


class TestCachedRunParity:
    """A warm cache hit is observationally identical to a cold run."""

    def test_hit_matches_cold_run_both_engines(self):
        program = parse(FAC)
        reference = run_monitored(strict, program, ProfilerMonitor())
        cache = CompilationCache(4)
        cfg = RunConfig(engine="compiled")
        cold = run_monitored(
            strict, program, ProfilerMonitor(), config=cfg, cache=cache
        )
        warm = run_monitored(
            strict, program, ProfilerMonitor(), config=cfg, cache=cache
        )
        assert cache.stats().hits == 1
        for result in (cold, warm):
            assert result.answer == reference.answer
            assert result.reports() == reference.reports()

    def test_hit_matches_cold_run_with_fault_isolation(self):
        from repro.monitoring.faults import FlakyMonitor

        program = parse(FAC)
        cache = CompilationCache(4)
        cfg = RunConfig(engine="compiled", fault_policy="quarantine")

        def flaky():
            return FlakyMonitor(ProfilerMonitor(), fail_on=2)

        cold = run_monitored(strict, program, flaky(), config=cfg, cache=cache)
        warm = run_monitored(strict, program, flaky(), config=cfg, cache=cache)
        oracle = run_monitored(
            strict, program, flaky(), engine="compiled", fault_policy="quarantine"
        )
        assert cold.answer == warm.answer == oracle.answer
        from repro.observability import fault_tuples

        assert (
            fault_tuples(cold.faults)
            == fault_tuples(warm.faults)
            == fault_tuples(oracle.faults)
        )
        assert len(oracle.faults) >= 1  # the flake actually fired

    def test_telemetry_runs_bypass_the_cache(self):
        from repro.observability import RunMetrics

        program = parse(FAC)
        cache = CompilationCache(4)
        cfg = RunConfig(engine="compiled")
        run_monitored(strict, program, ProfilerMonitor(), config=cfg, cache=cache)
        counted = run_monitored(
            strict,
            program,
            ProfilerMonitor(),
            engine="compiled",
            metrics=RunMetrics(),
            cache=cache,
        )
        # The counted run neither hit nor polluted the cache...
        assert cache.stats().lookups == 1
        # ...and still produced real counters.
        assert counted.metrics is not None and counted.metrics.steps > 0
