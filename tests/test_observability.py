"""The observability layer: metrics, sinks, events, and stream completeness.

The headline property (Jahier & Ducassé's *sufficiency* of a generic
trace) is at the bottom: replaying a captured JSONL event stream through
the :func:`repro.observability.replay` fold reconstructs the profiler's
final counter environment and the fault log exactly — on both engines,
under both non-propagate fault policies.
"""

import io
import json

import pytest

from repro.languages.strict import strict
from repro.monitors import LabelCounterMonitor, ProfilerMonitor
from repro.monitoring.derive import run_monitored
from repro.observability import (
    CallbackSink,
    Event,
    InMemorySink,
    JsonlSink,
    NullSink,
    RunMetrics,
    Telemetry,
    fault_tuples,
    read_events,
    replay,
)
from repro.syntax.parser import parse

from tests.fault_injection import FAC_LABELED, flaky_profiler

ENGINES = ["reference", "compiled", "codegen"]

FAC = parse(FAC_LABELED)


# -- RunMetrics ------------------------------------------------------------------


class TestRunMetrics:
    def test_defaults_and_totals(self):
        metrics = RunMetrics()
        assert metrics.steps == 0
        assert metrics.total_activations() == 0
        metrics.activations["a"] = 2
        metrics.activations["b"] = 3
        metrics.faults["a"] = 1
        assert metrics.total_activations() == 5
        assert metrics.total_faults() == 1

    def test_eval_time_is_wall_minus_monitor(self):
        metrics = RunMetrics(wall_time=2.0, monitor_time=0.5)
        assert metrics.eval_time == 1.5
        metrics.monitor_time = 3.0  # clock skew must not go negative
        assert metrics.eval_time == 0.0

    def test_times_excluded_from_equality(self):
        a = RunMetrics(steps=7, wall_time=1.0)
        b = RunMetrics(steps=7, wall_time=2.0)
        assert a == b

    def test_reset(self):
        metrics = RunMetrics(steps=5, applications=2, state_transitions=1)
        metrics.activations["m"] = 1
        metrics.reset()
        assert metrics == RunMetrics()
        assert metrics.activations == {}

    def test_to_dict_is_json_safe(self):
        metrics = RunMetrics(steps=3)
        metrics.pre_calls["m"] = 1
        assert json.loads(json.dumps(metrics.to_dict()))["steps"] == 3

    def test_render_mentions_every_counter(self):
        text = RunMetrics().render()
        for label in ("steps", "applications", "activations", "faults", "wall time"):
            assert label in text

    def test_accumulates_across_runs(self):
        metrics = RunMetrics()
        for _ in range(2):
            run_monitored(strict, FAC, LabelCounterMonitor(), metrics=metrics)
        single = RunMetrics()
        run_monitored(strict, FAC, LabelCounterMonitor(), metrics=single)
        assert metrics.steps == 2 * single.steps
        assert metrics.activations["count"] == 2 * single.activations["count"]


# -- the Telemetry gatekeeper ----------------------------------------------------


class TestTelemetryCreate:
    def test_nothing_requested_means_none(self):
        assert Telemetry.create(None, None) is None

    def test_null_sink_counts_as_no_sink(self):
        assert Telemetry.create(None, NullSink()) is None

    def test_metrics_alone_activates(self):
        metrics = RunMetrics()
        telemetry = Telemetry.create(metrics, None)
        assert telemetry is not None and telemetry.metrics is metrics
        assert telemetry.sink is None

    def test_sink_alone_activates_with_fresh_metrics(self):
        telemetry = Telemetry.create(None, InMemorySink())
        assert telemetry is not None
        assert isinstance(telemetry.metrics, RunMetrics)


# -- sinks -----------------------------------------------------------------------


class TestSinks:
    def test_in_memory_of_type(self):
        sink = InMemorySink()
        sink.emit(Event(1, "fault", "m"))
        sink.emit(Event(2, "quarantine", "m"))
        assert [e.type for e in sink.of_type("fault")] == ["fault"]

    def test_callback_sink(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit(Event(1, "fault"))
        assert seen[0].seq == 1

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(Event(1, "monitor-pre", "m", {"annotation": "fac"}))
            sink.emit(Event(2, "fault", "m", {"phase": "pre"}))
        events = read_events(path)
        assert events == [
            Event(1, "monitor-pre", "m", {"annotation": "fac"}),
            Event(2, "fault", "m", {"phase": "pre"}),
        ]

    def test_jsonl_accepts_file_object_without_closing_it(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.emit(Event(1, "step"))
        sink.close()
        assert json.loads(buffer.getvalue())["type"] == "step"

    def test_event_dict_round_trip(self):
        event = Event(3, "state-update", "m", {"phase": "post"})
        assert Event.from_dict(event.to_dict()) == event


# -- telemetry through run_monitored ---------------------------------------------


class TestRunTelemetry:
    def test_no_telemetry_means_no_metrics(self):
        result = run_monitored(strict, FAC, LabelCounterMonitor())
        assert result.metrics is None

    def test_null_sink_means_no_metrics(self):
        result = run_monitored(
            strict, FAC, LabelCounterMonitor(), event_sink=NullSink()
        )
        assert result.metrics is None

    @pytest.mark.parametrize("engine", ENGINES)
    def test_metrics_populated(self, engine):
        metrics = RunMetrics()
        result = run_monitored(
            strict, FAC, LabelCounterMonitor(), engine=engine, metrics=metrics
        )
        assert result.metrics is metrics
        assert result.answer == 24
        assert metrics.steps > 0
        assert metrics.applications > 0
        assert metrics.activations == {"count": 5}
        assert metrics.pre_calls == {"count": 5}
        assert metrics.post_calls == {"count": 5}
        assert metrics.state_transitions == 5  # counter updates on pre only
        assert metrics.faults == {}
        assert metrics.wall_time > 0.0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sink_alone_returns_metrics(self, engine):
        result = run_monitored(
            strict, FAC, LabelCounterMonitor(), engine=engine,
            event_sink=InMemorySink(),
        )
        assert result.metrics is not None and result.metrics.steps > 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_step_events_match_step_counter(self, engine):
        metrics = RunMetrics()
        sink = InMemorySink(wants_steps=True)
        run_monitored(
            strict, FAC, LabelCounterMonitor(), engine=engine,
            metrics=metrics, event_sink=sink,
        )
        assert len(sink.of_type("step")) == metrics.steps

    @pytest.mark.parametrize("engine", ENGINES)
    def test_step_events_opt_in(self, engine):
        sink = InMemorySink()  # wants_steps=False
        run_monitored(
            strict, FAC, LabelCounterMonitor(), engine=engine, event_sink=sink
        )
        assert sink.of_type("step") == []
        assert len(sink.of_type("monitor-pre")) == 5

    def test_monitored_result_keeps_original_specs(self):
        monitor = LabelCounterMonitor()
        result = run_monitored(strict, FAC, monitor, metrics=RunMetrics())
        assert result.monitors == (monitor,)
        assert result.report() == {"fac": 5}

    def test_empty_stack_still_counts(self):
        metrics = RunMetrics()
        result = run_monitored(strict, parse("1 + 2"), [], metrics=metrics)
        assert result.answer == 3
        assert metrics.steps == 5  # App, 2, App, 1, +
        assert metrics.applications == 2


# -- telemetry through the toolbox and sessions ----------------------------------


class TestToolboxTelemetry:
    def test_evaluate_with_tools(self):
        from repro.toolbox.registry import evaluate

        metrics = RunMetrics()
        result = evaluate("profile", FAC_LABELED, metrics=metrics)
        assert result.metrics is metrics
        assert metrics.activations == {"profile": 5}

    def test_evaluate_without_tools(self):
        from repro.toolbox.registry import evaluate

        metrics = RunMetrics()
        result = evaluate((), "1 + 2", metrics=metrics)
        assert result.answer == 3
        assert result.monitored is None
        assert result.metrics is metrics and metrics.steps == 5

    def test_session_evaluate(self):
        from repro.toolbox.session import Session

        session = Session()
        session.define("fac", "lambda x. if x = 0 then 1 else x * fac (x - 1)")
        metrics = RunMetrics()
        result = session.evaluate("fac 4", tools="profile", metrics=metrics)
        assert result.answer == 24
        assert result.metrics is metrics
        assert metrics.activations == {"profile": 5}

    def test_session_evaluate_no_tools(self):
        from repro.toolbox.session import Session

        session = Session()
        metrics = RunMetrics()
        result = session.evaluate("2 * 3", metrics=metrics)
        assert result.answer == 6
        assert metrics.steps > 0


# -- event-stream completeness ---------------------------------------------------


class TestEventStreamCompleteness:
    """Replaying a captured JSONL stream reconstructs the run exactly."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("fault_policy", ["quarantine", "log"])
    def test_replay_reconstructs_profiler_and_faults(
        self, tmp_path, engine, fault_policy
    ):
        path = tmp_path / f"{engine}-{fault_policy}.jsonl"
        metrics = RunMetrics()
        with JsonlSink(path, wants_steps=True) as sink:
            result = run_monitored(
                strict,
                FAC,
                flaky_profiler(2),
                engine=engine,
                fault_policy=fault_policy,
                metrics=metrics,
                event_sink=sink,
            )
        assert result.answer == 24  # fault isolation kept the answer

        summary = replay(read_events(path))

        # The fold's successful-pre counts ARE the profiler's final
        # counter environment — stream and state agree exactly.
        assert summary.pre_counts.get("profile", {}) == dict(result.report())
        # The fold's fault records ARE the fault log.
        assert summary.faults == fault_tuples(result.faults)
        assert summary.quarantined == list(result.quarantined_keys())
        # And the aggregates agree with the live metrics.
        assert summary.steps == metrics.steps
        assert summary.activations == metrics.activations
        assert summary.state_transitions == metrics.state_transitions

    @pytest.mark.parametrize("engine", ENGINES)
    def test_healthy_run_stream_matches_metrics(self, tmp_path, engine):
        path = tmp_path / "healthy.jsonl"
        metrics = RunMetrics()
        with JsonlSink(path, wants_steps=True) as sink:
            result = run_monitored(
                strict,
                FAC,
                ProfilerMonitor(),
                engine=engine,
                metrics=metrics,
                event_sink=sink,
            )
        summary = replay(read_events(path))
        assert summary.pre_counts["profile"] == dict(result.report())
        assert summary.faults == [] and summary.quarantined == []
        assert summary.steps == metrics.steps
