"""``repro serve`` end to end: socket in, JSONL out.

The daemon's contract (ISSUE PR 7): one JSON object per line in both
directions, responses in completion order correlated by ``id``, invalid
records rejected diagnostically at admission, overload rejected
explicitly (never dropped), lint gating before execution, and per-worker
trace files that parse while the daemon runs.  These tests speak the
real protocol over real sockets — unix-domain and TCP both.
"""

import json
import socket

import pytest

from repro.errors import ReproError
from repro.runtime import RunConfig
from repro.runtime.serve import Server, connect

PLAIN = "let f = lambda x. x * x in f %d"
FAC = "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac %d"
LOOP = "letrec loop = lambda x. loop (x + 1) in loop 0"


def _roundtrip(address, lines, expect):
    """Send ``lines`` on one connection; read ``expect`` response records."""
    sock = connect(address)
    try:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        for line in lines:
            stream.write(json.dumps(line) + "\n")
        stream.flush()
        sock.shutdown(socket.SHUT_WR)
        return [json.loads(stream.readline()) for _ in range(expect)]
    finally:
        sock.close()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "repro.sock"
    with Server(workers=2, socket_path=str(path)) as daemon:
        yield daemon


class TestUnixSocketE2E:
    def test_mixed_batch_correlates_by_id(self, server):
        lines = [
            {"id": "a", "program": PLAIN % 3},
            {"id": "b", "program": FAC % 5, "tools": "profile"},
            {"id": "c", "program": "let oops = in"},
            {"id": "d", "program": PLAIN % 4, "timeout": 0},
        ]
        responses = _roundtrip(server.address, lines, expect=4)
        by_id = {record["id"]: record for record in responses}
        assert set(by_id) == {"a", "b", "c", "d"}
        assert by_id["a"]["ok"] and by_id["a"]["answer"] == 9
        assert by_id["b"]["ok"] and by_id["b"]["reports"]["profile"] == {"fac": 6}
        assert by_id["c"]["ok"] is False
        assert by_id["c"]["error_type"] == "ParseError"
        assert by_id["d"]["ok"] is False
        assert by_id["d"]["error_type"] == "ValueError"
        assert "positive" in by_id["d"]["error"]
        for record in responses:
            assert "duration" in record  # the latency field clients read

    def test_ping_stats_and_unknown_op(self, server):
        responses = _roundtrip(
            server.address,
            [{"op": "ping"}, {"op": "stats"}, {"op": "reboot"}],
            expect=3,
        )
        ping, stats, unknown = responses
        assert ping == {"ok": True, "op": "ping"}
        assert stats["ok"] and stats["pool"]["workers"] == 2
        assert stats["serve"]["received"] >= 0
        assert unknown["ok"] is False
        assert unknown["error_type"] == "ProtocolError"

    def test_unparseable_line_is_a_protocol_error(self, server):
        sock = connect(server.address)
        try:
            stream = sock.makefile("rw", encoding="utf-8", newline="\n")
            stream.write("this is not json\n")
            stream.write(json.dumps({"id": "ok", "program": PLAIN % 2}) + "\n")
            stream.flush()
            sock.shutdown(socket.SHUT_WR)
            records = [json.loads(stream.readline()) for _ in range(2)]
        finally:
            sock.close()
        by_type = {record.get("error_type"): record for record in records}
        assert "ProtocolError" in by_type
        assert any(record.get("ok") and record.get("id") == "ok" for record in records)

    def test_concurrent_connections(self, server):
        import threading

        answers = {}

        def client(n):
            [record] = _roundtrip(
                server.address, [{"id": n, "program": PLAIN % n}], expect=1
            )
            answers[n] = record["answer"]

        threads = [threading.Thread(target=client, args=(n,)) for n in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert answers == {n: n * n for n in range(6)}


class TestTransports:
    def test_tcp_ephemeral_port(self):
        with Server(workers=1, port=0) as daemon:
            host, port = daemon.address
            assert port > 0
            [record] = _roundtrip((host, port), [{"program": PLAIN % 7}], expect=1)
            assert record["ok"] and record["answer"] == 49

    def test_exactly_one_transport_required(self):
        with pytest.raises(ReproError, match="exactly one transport"):
            Server(workers=1)
        with pytest.raises(ReproError, match="exactly one transport"):
            Server(workers=1, socket_path="/tmp/x.sock", port=9999)


class TestAdmissionControl:
    def test_overload_rejected_never_dropped(self, tmp_path):
        path = tmp_path / "busy.sock"
        with Server(workers=1, queue_depth=1, socket_path=str(path)) as daemon:
            lines = [
                {"id": n, "program": LOOP, "timeout": 0.4} for n in range(10)
            ]
            responses = _roundtrip(daemon.address, lines, expect=10)
            assert {record["id"] for record in responses} == set(range(10))
            kinds = [record["error_type"] for record in responses]
            assert kinds.count("Overloaded") >= 1, kinds
            assert set(kinds) <= {"Overloaded", "EvaluationTimeout"}
            stats = daemon.stats()["serve"]
            assert stats["rejected"] == kinds.count("Overloaded")
            assert stats["rejected"] + stats["completed"] == 10

    def test_lint_error_gates_before_execution(self, tmp_path):
        path = tmp_path / "lint.sock"
        with Server(
            workers=1, socket_path=str(path), config=RunConfig(lint="error")
        ) as daemon:
            responses = _roundtrip(
                daemon.address,
                [
                    {"id": "bad", "program": "foo 1"},
                    # A config key in the record must overlay the daemon's
                    # config, not replace it — the historical bypass built
                    # a fresh lint="off" config from {"max_steps": ...}.
                    {"id": "bad-override", "program": "foo 1", "max_steps": 100},
                    {"id": "ok", "program": PLAIN % 2},
                ],
                expect=3,
            )
            by_id = {record["id"]: record for record in responses}
            for rejected in ("bad", "bad-override"):
                assert by_id[rejected]["ok"] is False
                assert by_id[rejected]["error_type"] == "StaticAnalysisError"
                assert by_id[rejected]["diagnostics"]  # findings ride along
            assert by_id["ok"]["ok"] and by_id["ok"]["answer"] == 4


class TestServeTelemetry:
    def test_worker_trace_files_parse_with_worker_tags(self, tmp_path):
        path = tmp_path / "traced.sock"
        trace_dir = tmp_path / "traces"
        with Server(
            workers=2, socket_path=str(path), trace_dir=str(trace_dir)
        ) as daemon:
            _roundtrip(
                daemon.address,
                [{"id": n, "program": FAC % 6, "tools": "profile"} for n in range(3)],
                expect=3,
            )
        paths = sorted(trace_dir.glob("worker-*.jsonl"))
        assert len(paths) == 2
        served = 0
        for trace in paths:
            for line in trace.read_text().splitlines():
                record = json.loads(line)
                assert "worker" in record["payload"]
                if record["type"] == "serve-request":
                    served += 1
        assert served == 3

    def test_stale_socket_file_is_replaced(self, tmp_path):
        path = tmp_path / "stale.sock"
        path.write_text("")  # a dead daemon's leftover
        with Server(workers=1, socket_path=str(path)) as daemon:
            [record] = _roundtrip(daemon.address, [{"program": PLAIN % 2}], expect=1)
            assert record["ok"]
        assert not path.exists()  # close() unlinks
