"""Hypothesis strategies generating random ``L_lambda`` programs.

The generator produces *closed, terminating* programs: integer/boolean
arithmetic, let/lambda binding, bounded structural recursion over a
decreasing counter, list construction, and annotations sprinkled at
arbitrary points.  Termination comes by construction (recursive calls only
on ``n - 1`` guarded by ``n = 0`` / ``n < k`` tests), so property tests
can evaluate every generated program without step limits.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.syntax.annotations import FnHeader, Label
from repro.syntax.ast import (
    Annotated,
    App,
    Const,
    Expr,
    If,
    Lam,
    Let,
    Letrec,
    Var,
    app,
)

_LABELS = ["p0", "p1", "p2", "p3", "p4"]


def _binop(op: str, left: Expr, right: Expr) -> Expr:
    return App(App(Var(op), left), right)


@st.composite
def int_expr(draw, env: tuple, depth: int) -> Expr:
    """An integer-valued expression over integer variables ``env``."""
    if depth <= 0:
        choices = [st.integers(-20, 20).map(Const)]
        if env:
            choices.append(st.sampled_from(env).map(Var))
        return draw(st.one_of(choices))

    kind = draw(
        st.sampled_from(
            ["leaf", "add", "sub", "mul", "if", "let", "apply", "annot", "minmax"]
        )
    )
    if kind == "leaf":
        return draw(int_expr(env, 0))
    if kind in ("add", "sub", "mul"):
        op = {"add": "+", "sub": "-", "mul": "*"}[kind]
        return _binop(
            op, draw(int_expr(env, depth - 1)), draw(int_expr(env, depth - 1))
        )
    if kind == "minmax":
        op = draw(st.sampled_from(["min", "max"]))
        return app(
            Var(op), draw(int_expr(env, depth - 1)), draw(int_expr(env, depth - 1))
        )
    if kind == "if":
        cond = draw(bool_expr(env, depth - 1))
        return If(cond, draw(int_expr(env, depth - 1)), draw(int_expr(env, depth - 1)))
    if kind == "let":
        name = draw(st.sampled_from(["a", "b", "c"]))
        bound = draw(int_expr(env, depth - 1))
        return Let(name, bound, draw(int_expr(env + (name,), depth - 1)))
    if kind == "apply":
        name = draw(st.sampled_from(["a", "b", "c"]))
        body = draw(int_expr(env + (name,), depth - 1))
        argument = draw(int_expr(env, depth - 1))
        return App(Lam(name, body), argument)
    if kind == "annot":
        label = draw(st.sampled_from(_LABELS))
        return Annotated(Label(label), draw(int_expr(env, depth - 1)))
    raise AssertionError(kind)


@st.composite
def bool_expr(draw, env: tuple, depth: int) -> Expr:
    if depth <= 0:
        return Const(draw(st.booleans()))
    kind = draw(st.sampled_from(["leaf", "cmp", "not", "annot"]))
    if kind == "leaf":
        return Const(draw(st.booleans()))
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "<", "<=", ">", ">=", "/="]))
        return _binop(
            op, draw(int_expr(env, depth - 1)), draw(int_expr(env, depth - 1))
        )
    if kind == "not":
        return App(Var("not"), draw(bool_expr(env, depth - 1)))
    if kind == "annot":
        label = draw(st.sampled_from(_LABELS))
        return Annotated(Label(label), draw(bool_expr(env, depth - 1)))
    raise AssertionError(kind)


@st.composite
def recursive_program(draw) -> Expr:
    """A program with a structurally terminating recursive function.

    ``letrec f = lambda n. if n <= 0 then <base> else <step involving
    f (n - 1)> in f <k>`` with random base/step bodies, possibly
    annotated (including a function-header annotation for tracers).
    """
    base = draw(int_expr(("n",), 2))
    step_fn = draw(
        st.sampled_from(
            [
                lambda rec: _binop("+", Var("n"), rec),
                lambda rec: _binop("-", rec, Const(1)),
                lambda rec: _binop("+", rec, rec),
                lambda rec: _binop("*", Const(2), rec),
                lambda rec: rec,
            ]
        )
    )
    recursive_call = App(Var("f"), _binop("-", Var("n"), Const(1)))
    step = step_fn(recursive_call)
    body: Expr = If(_binop("<=", Var("n"), Const(0)), base, step)
    if draw(st.booleans()):
        body = Annotated(FnHeader("f", ("n",)), body)
    if draw(st.booleans()):
        body = Annotated(Label(draw(st.sampled_from(_LABELS))), body)
    argument = Const(draw(st.integers(0, 8)))
    return Letrec((("f", Lam("n", body)),), App(Var("f"), argument))


@st.composite
def closed_program(draw) -> Expr:
    """A closed, terminating program suitable for soundness properties."""
    kind = draw(st.sampled_from(["int", "bool", "rec"]))
    if kind == "int":
        return draw(int_expr((), 3))
    if kind == "bool":
        return draw(bool_expr((), 3))
    return draw(recursive_program())


@st.composite
def exc_program(draw) -> Expr:
    """A closed, terminating ``L_exc`` program with raises and handlers.

    Shape: ``try <body> catch e. <handler>`` where the body is an integer
    expression possibly aborted by embedded raises, and handlers may
    re-raise into an enclosing try.  Always terminates: the underlying
    expressions come from the terminating generators above.
    """
    from repro.languages.exceptions import Raise, TryCatch

    def with_raises(expr: Expr, depth: int) -> Expr:
        if depth <= 0:
            return expr
        choice = draw(st.sampled_from(["keep", "raise", "guard"]))
        if choice == "raise":
            return _binop("+", expr, Raise(draw(int_expr((), 1))))
        if choice == "guard":
            # `e` is only in scope inside handlers, never in try bodies.
            inner = with_raises(draw(int_expr((), 1)), depth - 1)
            handler = draw(
                st.sampled_from(
                    [
                        Var("e"),
                        _binop("+", Var("e"), Const(1)),
                        Raise(_binop("*", Var("e"), Const(2))),
                    ]
                )
            )
            return TryCatch(_binop("+", expr, inner), "e", handler)
        return expr

    body = with_raises(draw(int_expr((), 2)), draw(st.integers(1, 3)))
    top_handler = draw(
        st.sampled_from([Var("e"), _binop("-", Var("e"), Const(7)), Const(0)])
    )
    if draw(st.booleans()):
        body = Annotated(Label(draw(st.sampled_from(_LABELS))), body)
    return TryCatch(body, "e", top_handler)
