"""Shared fixtures and program corpus for the test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.languages import imperative, lazy, strict
from repro.syntax.parser import parse

GOLDENS_DIR = Path(__file__).parent / "goldens"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/* from current output instead of comparing",
    )


@pytest.fixture
def golden(request):
    """Compare ``actual`` against a golden file (or rewrite it).

    Usage: ``golden("tracer_report.txt", rendered)``.  With
    ``pytest --update-goldens`` the file is (re)written and the test
    passes; otherwise a missing or mismatched golden fails with a hint.
    """
    update = request.config.getoption("--update-goldens")

    def check(name: str, actual: str) -> None:
        if not actual.endswith("\n"):
            actual += "\n"
        path = GOLDENS_DIR / name
        if update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(actual, encoding="utf-8")
            return
        assert path.exists(), (
            f"golden file {path} missing — run "
            f"`pytest --update-goldens` to create it"
        )
        expected = path.read_text(encoding="utf-8")
        assert actual == expected, (
            f"output differs from golden {name} — if the change is "
            f"intentional, refresh with `pytest --update-goldens`.\n"
            f"--- expected ---\n{expected}--- actual ---\n{actual}"
        )

    return check

# ----------------------------------------------------------------- the corpus
# (name, source, expected standard answer) — used by semantics, soundness,
# compiler and partial-evaluation tests alike.

FAC_SRC = "letrec fac = lambda x. if x = 0 then 1 else x * fac (x - 1) in fac {n}"
FIB_SRC = "letrec fib = lambda n. if n < 2 then n else fib (n - 1) + fib (n - 2) in fib {n}"

CORPUS = [
    ("const", "42", 42),
    ("negative", "-7", -7),
    ("bool", "true", True),
    ("string", '"hello"', "hello"),
    ("arith", "1 + 2 * 3", 7),
    ("arith_paren", "(1 + 2) * 3", 9),
    ("comparison", "3 < 5", True),
    ("if_true", "if 1 = 1 then 10 else 20", 10),
    ("if_false", "if 1 = 2 then 10 else 20", 20),
    ("lambda_app", "(lambda x. x + 1) 41", 42),
    ("curried", "(lambda x. lambda y. x - y) 10 4", 6),
    ("let", "let x = 5 in x * x", 25),
    ("let_shadow", "let x = 1 in let x = 2 in x", 2),
    ("closure_capture", "let x = 10 in (lambda y. x + y) 5", 15),
    ("fac5", FAC_SRC.format(n=5), 120),
    ("fac0", FAC_SRC.format(n=0), 1),
    ("fib10", FIB_SRC.format(n=10), 55),
    (
        "mutual",
        "letrec even = lambda n. if n = 0 then true else odd (n - 1) "
        "and odd = lambda n. if n = 0 then false else even (n - 1) "
        "in even 10",
        True,
    ),
    (
        "list_sum",
        "letrec sum = lambda l. if l = [] then 0 else (hd l) + sum (tl l) "
        "in sum [1, 2, 3, 4]",
        10,
    ),
    (
        "list_build",
        "letrec upto = lambda n. if n = 0 then [] else n :: upto (n - 1) "
        "in length (upto 7)",
        7,
    ),
    (
        "higher_order",
        "letrec map = lambda f. lambda l. "
        "if l = [] then [] else (f (hd l)) :: (map f (tl l)) "
        "in hd (map (lambda x. x * x) [9, 2])",
        81,
    ),
    ("string_append", '"foo" ++ "bar"', "foobar"),
    ("annotated_transparent", "{p}: (1 + 2) * {q}: 3", 9),
    (
        "ackermann",
        "letrec ack = lambda m. lambda n. "
        "if m = 0 then n + 1 "
        "else if n = 0 then ack (m - 1) 1 "
        "else ack (m - 1) (ack m (n - 1)) "
        "in ack 2 3",
        9,
    ),
]

CORPUS_IDS = [name for name, _, _ in CORPUS]


@pytest.fixture(params=CORPUS, ids=CORPUS_IDS)
def corpus_case(request):
    name, source, expected = request.param
    return parse(source), expected


@pytest.fixture
def strict_lang():
    return strict


@pytest.fixture
def lazy_lang():
    return lazy


@pytest.fixture
def imperative_lang():
    return imperative


# Paper programs (Section 8), shared by several monitor tests.


@pytest.fixture
def paper_profiler_program():
    return parse(
        """
        letrec mul = lambda x. lambda y. {mul}:(x*y) in
        letrec fac = lambda x. {fac}:if (x=0) then 1 else mul x (fac (x-1))
        in fac 3
        """
    )


@pytest.fixture
def paper_tracer_program():
    return parse(
        """
        letrec mul = lambda x. lambda y. {mul(x, y)}:(x*y) in
        letrec fac = lambda x. {fac(x)}:if (x=0) then 1 else mul x (fac (x-1))
        in fac 3
        """
    )


@pytest.fixture
def paper_demon_program():
    return parse(
        """
        letrec inclist = lambda l. lambda acc.
            if (l = []) then acc else inclist (tl l) (((hd l) + 1) :: acc) in
        let l1 = {l1}:(inclist [1, 10, 100] []) in
        let l2 = {l2}:(inclist l1 []) in
        let l3 = {l3}:(inclist l2 [])
        in l3
        """
    )


@pytest.fixture
def paper_collecting_program():
    return parse(
        """
        letrec fac = lambda n. if {test}:(n = 0) then 1 else {n}: n * (fac (n - 1))
        in fac 3
        """
    )


@pytest.fixture
def paper_counter_program():
    return parse(
        """
        letrec fac = lambda x. if (x = 0)
                     then {A}: 1
                     else {B}: (x * fac (x - 1))
        in fac 5
        """
    )
