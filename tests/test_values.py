"""Tests for the denotable-value domain."""

import pytest

from repro.errors import EvalError, PrimitiveError
from repro.semantics.values import (
    NIL,
    Closure,
    Cons,
    PrimFun,
    Thunk,
    from_python_list,
    hashable_key,
    is_function,
    iter_list,
    to_python_list,
    value_to_string,
    values_equal,
)
from repro.syntax.ast import Const, Var


class TestLists:
    def test_nil_singleton(self):
        assert from_python_list([]) is NIL

    def test_roundtrip(self):
        values = [1, 2, 3]
        assert to_python_list(from_python_list(values)) == values

    def test_nested(self):
        nested = from_python_list([from_python_list([1]), NIL])
        items = to_python_list(nested)
        assert isinstance(items[0], Cons)
        assert items[1] is NIL

    def test_improper_list_rejected(self):
        with pytest.raises(EvalError):
            to_python_list(Cons(1, 2))

    def test_iter_list(self):
        assert list(iter_list(from_python_list([5, 6]))) == [5, 6]

    def test_nil_is_falsy(self):
        assert not NIL
        assert repr(NIL) == "NIL"


class TestEquality:
    def test_ints(self):
        assert values_equal(3, 3)
        assert not values_equal(3, 4)

    def test_bool_int_distinct(self):
        assert not values_equal(True, 1)
        assert not values_equal(0, False)

    def test_strings(self):
        assert values_equal("a", "a")

    def test_lists_structural(self):
        assert values_equal(from_python_list([1, 2]), from_python_list([1, 2]))
        assert not values_equal(from_python_list([1]), from_python_list([1, 2]))

    def test_nil_vs_list(self):
        assert not values_equal(NIL, from_python_list([1]))

    def test_functions_not_comparable(self):
        prim = PrimFun("id", 1, lambda x: x)
        with pytest.raises(PrimitiveError):
            values_equal(prim, prim)

    def test_cons_dunder_eq(self):
        assert Cons(1, NIL) == Cons(1, NIL)
        assert Cons(1, NIL) != Cons(2, NIL)


class TestPrimFun:
    def test_saturated_application(self):
        add = PrimFun("+", 2, lambda a, b: a + b)
        assert add.apply(1).apply(2) == 3

    def test_partial_application_shares_nothing(self):
        add = PrimFun("+", 2, lambda a, b: a + b)
        plus1 = add.apply(1)
        plus2 = add.apply(2)
        assert plus1.apply(10) == 11
        assert plus2.apply(10) == 12

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            PrimFun("bad", 0, lambda: 1)

    def test_repr(self):
        add = PrimFun("+", 2, lambda a, b: a + b)
        assert "+" in repr(add)
        assert "1 applied" in repr(add.apply(1))


class TestValueToString:
    def test_basics(self):
        assert value_to_string(True) == "True"
        assert value_to_string(False) == "False"
        assert value_to_string(42) == "42"
        assert value_to_string("hi") == "hi"

    def test_lists(self):
        assert value_to_string(from_python_list([1, 2])) == "[1, 2]"
        assert value_to_string(NIL) == "[]"

    def test_closure(self):
        closure = Closure("x", Const(1), None, name="f")
        assert value_to_string(closure) == "<fun f>"

    def test_prim(self):
        assert value_to_string(PrimFun("+", 2, lambda a, b: a + b)) == "<prim +>"

    def test_thunk(self):
        thunk = Thunk(Var("x"), None)
        assert value_to_string(thunk) == "<delayed>"
        thunk.memoize(7)
        assert value_to_string(thunk) == "7"


class TestIsFunction:
    def test_closure_and_prim(self):
        assert is_function(Closure("x", Const(1), None))
        assert is_function(PrimFun("id", 1, lambda x: x))

    def test_basics_are_not(self):
        assert not is_function(3)
        assert not is_function(NIL)
        assert not is_function("s")


class TestHashableKey:
    def test_distinguishes_bool_from_int(self):
        assert hashable_key(True) != hashable_key(1)

    def test_lists(self):
        a = hashable_key(from_python_list([1, 2]))
        b = hashable_key(from_python_list([1, 2]))
        assert a == b

    def test_functions_by_identity(self):
        f = PrimFun("id", 1, lambda x: x)
        g = PrimFun("id", 1, lambda x: x)
        assert hashable_key(f) != hashable_key(g)

    def test_usable_in_sets(self):
        keys = {hashable_key(v) for v in (1, True, "1", from_python_list([1]))}
        assert len(keys) == 4
