"""Tests for the unwind monitor over the exceptions language."""

from repro.languages import strict
from repro.languages.exceptions import exceptions_language, parse_exc
from repro.monitoring.derive import run_monitored
from repro.monitors.unwind import UnwindMonitor
from repro.syntax.parser import parse


class TestNormalControlFlow:
    def test_balanced_run_reports_nothing(self):
        program = parse(
            "letrec f = lambda n. {f}: if n = 0 then 0 else f (n - 1) in f 3"
        )
        result = run_monitored(strict, program, UnwindMonitor())
        report = result.report()
        assert report.aborted == ()
        assert report.unmatched_at_end == ()
        assert report.render() == "no aborted activations"

    def test_works_on_strict_language(self, corpus_case):
        program, expected = corpus_case
        result = run_monitored(strict, program, UnwindMonitor())
        assert result.answer == expected
        assert result.report().total_aborted_activations == 0


class TestExceptionalControlFlow:
    def test_single_abort_detected(self):
        program = parse_exc(
            "try ({outer}: ({inner}: (raise 1))) catch e. {handler}: e"
        )
        result = run_monitored(exceptions_language, program, UnwindMonitor())
        assert result.answer == 1
        report = result.report()
        # outer and inner both entered, neither exited; handler balanced.
        assert report.unmatched_at_end == ("outer", "inner")

    def test_abort_through_recursion(self):
        program = parse_exc(
            "letrec dig = lambda n. {dig}: (if n = 0 then raise 99 else dig (n - 1)) in "
            "try ({root}: (dig 3)) catch e. {handler}: e"
        )
        result = run_monitored(exceptions_language, program, UnwindMonitor())
        assert result.answer == 99
        report = result.report()
        # root + 4 dig activations all abandoned.
        assert report.unmatched_at_end == ("root", "dig", "dig", "dig", "dig")

    def test_partial_abort_with_outer_completion(self):
        # The outer annotated region COMPLETES (the try is inside it), so
        # its post runs and discovers the abandoned inner frames.
        program = parse_exc(
            "{outer}: (try ({inner}: (raise 5)) catch e. e + 1)"
        )
        result = run_monitored(exceptions_language, program, UnwindMonitor())
        assert result.answer == 6
        report = result.report()
        assert report.aborted == (("inner",),)
        assert report.unmatched_at_end == ()
        assert "unwind #1 cut through: inner" in report.render()

    def test_multiple_unwinds(self):
        program = parse_exc(
            "{outer}: ("
            "  (try ({a}: (raise 1)) catch e. e) + "
            "  (try ({b}: (raise 2)) catch e. e)"
            ")"
        )
        result = run_monitored(exceptions_language, program, UnwindMonitor())
        assert result.answer == 3
        report = result.report()
        # Both aborted frames are discovered together when the enclosing
        # region's post finally runs (detection is as lazy as the
        # surviving hooks): one group containing both, in stack order.
        assert report.aborted == (("b", "a"),)
        assert report.total_aborted_activations == 2
