"""Differential parity: the fast engines against the reference oracle.

The staged fast-path engine (:mod:`repro.semantics.compiled`) and the
specializing code generator (:mod:`repro.partial_eval.codegen`, the
``codegen`` engine) are only admissible as implementations of the
monitoring semantics if they are *observationally indistinguishable* from
the reference interpreter — same answers, same final monitor states, same
errors with the same messages.  These property tests run every
hypothesis-generated program through all three engines and compare
everything observable: answers, reports, metrics counters, and fault
behavior under every fault policy.
"""

import pytest
from hypothesis import given, settings

from repro.errors import (
    EvalError,
    NotAFunctionError,
    StepLimitExceeded,
    UnboundIdentifierError,
)
from repro.languages.strict import strict
from repro.monitoring.derive import run_monitored
from repro.monitoring.spec import FunctionSpec
from repro.monitors import LabelCounterMonitor, TracerMonitor
from repro.semantics.values import is_function, value_to_string, values_equal
from repro.syntax.annotations import untag
from repro.syntax.parser import parse

from tests.generators import closed_program

ENGINES = ("reference", "compiled", "codegen")
FAST_ENGINES = ("compiled", "codegen")


def answers_match(reference, compiled) -> bool:
    """Observational equality of answers across engines.

    Function values are compared by display (the engines use different
    closure representations); everything else by object-language equality.
    """
    if is_function(reference) or is_function(compiled):
        return is_function(reference) and is_function(compiled) and (
            value_to_string(reference) == value_to_string(compiled)
        )
    return values_equal(reference, compiled)


def run_all(program, monitors):
    """One run per engine (specs are stateless, so sharing them is safe)."""
    return {
        engine: run_monitored(strict, program, monitors, engine=engine)
        for engine in ENGINES
    }


def run_both(program, monitors, engine="compiled"):
    ref = run_monitored(strict, program, monitors, engine="reference")
    com = run_monitored(strict, program, monitors, engine=engine)
    return ref, com


def assert_monitor_states_match(ref, com, monitors):
    for monitor in monitors:
        key = monitor.key
        if isinstance(monitor, TracerMonitor):
            ref_chan, ref_level = ref.state_of(key)
            com_chan, com_level = com.state_of(key)
            assert ref_chan.render() == com_chan.render()
            assert ref_level == com_level
        else:
            assert ref.state_of(key) == com.state_of(key)


# -- the headline differential properties (>= 200 random programs) ---------------


@settings(max_examples=120, deadline=None)
@given(closed_program())
def test_unmonitored_answers_agree(program):
    reference = strict.evaluate(program, max_steps=2_000_000)
    for engine in FAST_ENGINES:
        fast = strict.evaluate(program, max_steps=2_000_000, engine=engine)
        assert answers_match(reference, fast), engine


@settings(max_examples=120, deadline=None)
@given(closed_program())
def test_monitored_answers_and_states_agree(program):
    """Answer AND final monitor states agree under a composed stack."""
    counter = LabelCounterMonitor()
    tracer = TracerMonitor()
    monitors = counter & tracer
    runs = run_all(program, monitors)
    ref = runs["reference"]
    for engine in FAST_ENGINES:
        fast = runs[engine]
        assert answers_match(ref.answer, fast.answer), engine
        assert_monitor_states_match(ref, fast, [counter, tracer])


@settings(max_examples=60, deadline=None)
@given(closed_program())
def test_single_monitor_states_agree(program):
    """The single-slot state-vector fast path is invisible to monitors."""
    counter = LabelCounterMonitor()
    runs = run_all(program, counter)
    ref = runs["reference"]
    for engine in FAST_ENGINES:
        fast = runs[engine]
        assert answers_match(ref.answer, fast.answer), engine
        assert ref.state_of("count") == fast.state_of("count"), engine


# -- error parity ---------------------------------------------------------------


def engine_errors(source, exc_type):
    """The exception each engine raises for ``source``, keyed by engine."""
    program = parse(source)
    out = {}
    for engine in ENGINES:
        with pytest.raises(exc_type) as exc:
            strict.evaluate(program, engine=engine)
        out[engine] = exc.value
    return out


def assert_error_parity(source, exc_type):
    errors = engine_errors(source, exc_type)
    ref = errors["reference"]
    for engine in FAST_ENGINES:
        assert str(ref) == str(errors[engine]), engine
    return errors


class TestErrorParity:
    def test_unbound_identifier(self):
        errors = assert_error_parity("nosuch", UnboundIdentifierError)
        assert errors["compiled"].name == "nosuch"
        assert errors["codegen"].name == "nosuch"

    def test_unbound_in_dead_branch_is_lazy(self):
        # Reference semantics only fault on the branch actually taken;
        # the compilers must not fault at compile time on dead code.
        program = parse("if true then 1 else nosuch")
        for engine in FAST_ENGINES:
            assert strict.evaluate(program, engine=engine) == 1
        assert_error_parity("if false then 1 else nosuch", UnboundIdentifierError)

    def test_apply_non_function(self):
        assert_error_parity("3 4", NotAFunctionError)

    def test_apply_non_function_after_call(self):
        assert_error_parity("(lambda x. x) 3 4", NotAFunctionError)

    def test_non_boolean_condition(self):
        assert_error_parity("if 7 then 1 else 2", EvalError)

    def test_division_by_zero(self):
        assert_error_parity("10 / 0", EvalError)

    def test_head_of_empty_list(self):
        assert_error_parity("hd []", EvalError)


# -- resource semantics ---------------------------------------------------------


LOOP = (
    "letrec loop = lambda n. if n = 0 then 0 else loop (n - 1) "
    "in loop {n}"
)


class TestResourceParity:
    def test_compiled_runs_deep_recursion_in_constant_stack(self):
        program = parse(LOOP.format(n=200_000))
        assert strict.evaluate(program, engine="compiled") == 0

    def test_step_limit_enforced_on_compiled_engine(self):
        program = parse(LOOP.format(n=100_000))
        with pytest.raises(StepLimitExceeded) as exc:
            strict.evaluate(program, engine="compiled", max_steps=500)
        assert exc.value.limit == 500
        assert exc.value.consumed >= 500

    def test_step_limit_enforced_on_codegen_engine(self):
        # The codegen engine guards at function-entry granularity (one
        # charge per residual call), so a small budget still trips on
        # unbounded recursion — it just counts coarser units.
        program = parse(LOOP.format(n=100_000))
        with pytest.raises(StepLimitExceeded) as exc:
            strict.evaluate(program, engine="codegen", max_steps=500)
        assert exc.value.limit == 500
        assert exc.value.consumed >= 500

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_generous_step_limit_does_not_trip(self, engine):
        program = parse(LOOP.format(n=50))
        assert strict.evaluate(program, engine=engine, max_steps=1_000_000) == 0


# -- observing monitors through the compiled engine ------------------------------


@pytest.mark.parametrize("engine", FAST_ENGINES)
def test_observing_monitor_sees_inner_state(engine):
    """A cascade where the outer monitor reads the inner one's state."""
    watcher = FunctionSpec(
        key="watch",
        recognize=lambda a: untag(a, "watch"),
        initial=list,
        pre=lambda ann, term, ctx, state, inner: state + [dict(inner["count"])],
        observes=("count",),
    )
    program = parse("({p0}: 1) + ({watch: w}: ({p1}: ({p0}: 2)))")
    monitors = [LabelCounterMonitor(), watcher]
    ref, com = run_both(program, monitors, engine=engine)
    assert ref.answer == com.answer == 3
    assert ref.state_of("count") == com.state_of("count")
    assert ref.state_of("watch") == com.state_of("watch")
    # The watcher fired exactly once, snapshotting the counter's state.
    assert len(com.state_of("watch")) == 1


@pytest.mark.parametrize("engine", FAST_ENGINES)
def test_tracer_output_identical_on_paper_example(paper_tracer_program, engine):
    tracer = TracerMonitor()
    ref, com = run_both(paper_tracer_program, tracer, engine=engine)
    assert ref.answer == com.answer == 6
    assert ref.report() == com.report()


# -- fault isolation: parity extends to injected monitor failures ----------------


# -- telemetry: RunMetrics counters are engine-independent -----------------------


@settings(max_examples=60, deadline=None)
@pytest.mark.parametrize("fault_policy", ["propagate", "quarantine", "log"])
@given(closed_program())
def test_metrics_parity(fault_policy, program):
    """Steps, applications, per-slot activations, hook calls, state
    transitions and fault counts agree across engines — under every fault
    policy.  The compiled engine's counted mode counts at the reference
    interpreter's node granularity, so RunMetrics (whose equality ignores
    wall-clock fields) must compare equal outright."""
    from repro.observability import RunMetrics

    monitors = lambda: LabelCounterMonitor() & TracerMonitor()
    collected = {}
    for engine in ENGINES:
        metrics = RunMetrics()
        result = run_monitored(
            strict,
            program,
            monitors(),
            engine=engine,
            fault_policy=fault_policy,
            metrics=metrics,
            max_steps=2_000_000,
        )
        collected[engine] = (result, metrics)
    ref, ref_metrics = collected["reference"]
    for engine in FAST_ENGINES:
        fast, fast_metrics = collected[engine]
        assert answers_match(ref.answer, fast.answer), engine
        assert ref_metrics == fast_metrics, engine


@settings(max_examples=40, deadline=None)
@pytest.mark.parametrize("fault_policy", ["quarantine", "log"])
@given(closed_program())
def test_metrics_parity_under_injected_faults(fault_policy, program):
    """Fault counts ride the shared FaultLog observer, so they agree
    across engines by construction — this asserts the whole metrics
    object anyway, catching any counter the fault paths might skew."""
    from repro.observability import RunMetrics

    from tests.fault_injection import flaky_counter

    collected = {}
    for engine in ENGINES:
        metrics = RunMetrics()
        result = run_monitored(
            strict,
            program,
            flaky_counter(1),
            engine=engine,
            fault_policy=fault_policy,
            metrics=metrics,
            max_steps=2_000_000,
        )
        collected[engine] = (result, metrics)
    ref, ref_metrics = collected["reference"]
    for engine in FAST_ENGINES:
        fast, fast_metrics = collected[engine]
        assert answers_match(ref.answer, fast.answer), engine
        assert ref.faults == fast.faults, engine
        assert ref_metrics == fast_metrics, engine


@settings(max_examples=60, deadline=None)
@given(closed_program())
def test_quarantined_fault_parity(program):
    """Answers, surviving states AND fault records agree under injected
    failures — the fault-injection harness run as a parity property.
    (The full suite lives in tests/test_fault_injection.py.)"""
    from tests.fault_injection import flaky_counter

    runs = {}
    for engine in ENGINES:
        runs[engine] = run_monitored(
            strict,
            program,
            flaky_counter(1),
            engine=engine,
            fault_policy="quarantine",
            max_steps=2_000_000,
        )
    ref = runs["reference"]
    for engine in FAST_ENGINES:
        fast = runs[engine]
        assert answers_match(ref.answer, fast.answer), engine
        assert ref.faults == fast.faults, engine
        assert ref.state_of("count") == fast.state_of("count"), engine
    assert answers_match(
        ref.answer, strict.evaluate(program, max_steps=2_000_000)
    )
