"""The ``codegen`` engine tier wired through the runtime stack.

Parity proper lives in tests/test_engine_parity.py (three-way hypothesis
properties) and the golden suite; this file covers the plumbing the
engine rides on: the capability matrix, the compilation cache's engine
dimension, warm cache hits under a concurrent batch, resource guards,
and the ``repro compile`` subcommand.
"""

import threading

import pytest

from repro.errors import EvaluationTimeout, ReproError, StepLimitExceeded
from repro.languages.base import (
    ENGINE_LANGUAGES,
    ENGINES,
    check_engine_support,
    engine_help,
    engine_supports,
)
from repro.languages.strict import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import LabelCounterMonitor, ProfilerMonitor
from repro.partial_eval.codegen import generate_program
from repro.runtime import BatchRunner, CompilationCache, RunConfig, RunRequest
from repro.runtime.cache import cache_key
from repro.syntax.parser import parse

FAC = "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac 6"
PLAIN_FIB = (
    "letrec fib = lambda n. if n < 2 then n else fib (n - 1) + fib (n - 2) "
    "in fib 10"
)


# -- the capability matrix --------------------------------------------------------


class TestCapabilityMatrix:
    def test_every_engine_has_a_row(self):
        assert set(ENGINE_LANGUAGES) == set(ENGINES)

    def test_reference_supports_everything(self):
        assert engine_supports("reference", "strict")
        assert engine_supports("reference", "lazy")
        assert engine_supports("reference", "anything")

    @pytest.mark.parametrize("engine", ["compiled", "codegen"])
    def test_fast_engines_are_strict_only(self, engine):
        assert engine_supports(engine, "strict")
        assert not engine_supports(engine, "lazy")

    def test_unsupported_pair_error_names_both_sides(self):
        with pytest.raises(ReproError) as exc:
            check_engine_support("codegen", "lazy")
        message = str(exc.value)
        assert "codegen" in message and "'lazy'" in message
        assert "engine='reference'" in message

    def test_unknown_engine_rejected_first(self):
        with pytest.raises(ReproError) as exc:
            check_engine_support("warp", "strict")
        assert "unknown engine" in str(exc.value)

    def test_run_monitored_consults_the_matrix(self):
        from repro.languages.lazy import lazy

        with pytest.raises(ReproError) as exc:
            run_monitored(lazy, parse("1 + 2"), [], engine="codegen")
        assert "engine='codegen'" in str(exc.value)

    def test_run_config_validates_engine_names(self):
        with pytest.raises(ReproError):
            RunConfig(engine="warp").validate()
        assert RunConfig(engine="codegen").validate().engine == "codegen"

    def test_engine_help_mentions_every_engine(self):
        text = engine_help()
        for engine in ENGINES:
            assert engine in text


# -- the cache's engine dimension -------------------------------------------------


class TestCacheEngineDimension:
    def test_keys_differ_by_engine(self):
        program = parse("1 + 2")
        compiled_key = cache_key(strict, program, [], engine="compiled")
        codegen_key = cache_key(strict, program, [], engine="codegen")
        assert compiled_key != codegen_key

    def test_same_program_compiles_once_per_engine(self):
        cache = CompilationCache()
        program = parse(FAC)
        monitors = [ProfilerMonitor()]
        first = cache.get_or_compile(strict, program, monitors, engine="codegen")
        second = cache.get_or_compile(strict, program, monitors, engine="codegen")
        assert first is second
        staged = cache.get_or_compile(strict, program, monitors, engine="compiled")
        assert staged is not first
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 2

    def test_codegen_artifact_runs_from_cache(self):
        cache = CompilationCache()
        program = parse(FAC)
        generated = cache.get_or_compile(strict, program, [], engine="codegen")
        answer, _ = generated.run()
        assert answer == 720

    def test_unknown_engine_rejected(self):
        cache = CompilationCache()
        with pytest.raises(ValueError):
            cache.get_or_compile(strict, parse("1"), [], engine="warp")

    def test_warm_codegen_runs_through_run_monitored(self):
        cache = CompilationCache()
        program = parse(FAC)
        cold = run_monitored(
            strict, program, ProfilerMonitor(), engine="codegen", cache=cache
        )
        warm = run_monitored(
            strict, program, ProfilerMonitor(), engine="codegen", cache=cache
        )
        assert cold.answer == warm.answer == 720
        assert dict(cold.report()) == dict(warm.report()) == {"fac": 7}
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1


# -- warm cache hits in a concurrent batch (the acceptance scenario) --------------


class TestConcurrentBatch:
    def test_eight_thread_batch_with_warm_cache_matches_reference(self):
        cache = CompilationCache()
        requests = [
            RunRequest(
                program=FAC,
                tools="profile",
                config=RunConfig(engine="codegen"),
                tag=f"r{i}",
            )
            for i in range(24)
        ]
        runner = BatchRunner(workers=8, cache=cache)
        results = runner.run(requests)
        oracle = run_monitored(
            strict, parse(FAC), ProfilerMonitor(), engine="reference"
        )
        assert all(r.ok for r in results)
        for result in results:
            assert result.answer == oracle.answer == 720
            assert result.reports == {"profile": dict(oracle.report())}
        stats = cache.stats()
        # One codegen compilation total; every other request was a warm hit.
        assert stats.misses == 1
        assert stats.hits == len(requests) - 1

    def test_one_generated_program_is_thread_reusable(self):
        generated = generate_program(parse(PLAIN_FIB))
        answers = []
        errors = []

        def worker():
            try:
                answer, _ = generated.run()
                answers.append(answer)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert answers == [55] * 8


# -- resource guards --------------------------------------------------------------


LOOP = "letrec loop = lambda n. if n = 0 then 0 else loop (n - 1) in loop {n}"


class TestResourceGuards:
    def test_timeout_raises_evaluation_timeout(self):
        # Exponential work at bounded stack depth, so the cooperative
        # deadline trips long before the host recursion limit matters.
        program = parse(
            "letrec fib = lambda n. if n < 2 then n "
            "else fib (n - 1) + fib (n - 2) in fib 34"
        )
        with pytest.raises(EvaluationTimeout):
            run_monitored(strict, program, [], engine="codegen", timeout=0.05)

    def test_step_limit_through_run_monitored(self):
        program = parse(LOOP.format(n=100_000))
        with pytest.raises(StepLimitExceeded):
            run_monitored(strict, program, [], engine="codegen", max_steps=100)

    def test_guarded_variant_reuses_the_artifact(self):
        # One GeneratedProgram serves both guarded and unguarded runs.
        generated = generate_program(parse(LOOP.format(n=50)))
        answer, _ = generated.run()
        assert answer == 0
        answer, _ = generated.run(max_steps=1_000)
        assert answer == 0
        with pytest.raises(StepLimitExceeded):
            generated.run(max_steps=10)
        answer, _ = generated.run()  # unguarded path still intact
        assert answer == 0

    def test_host_stack_exhaustion_is_a_clean_eval_error(self):
        # The codegen engine runs on the native Python stack (no
        # trampoline), so recursion past the raised host limit must
        # surface as a ReproError naming the engine trade-off — never
        # as a raw RecursionError traceback.
        generated = generate_program(parse(LOOP.format(n=50_000)))
        with pytest.raises(ReproError, match="host recursion depth"):
            generated.run(recursion_limit=5_000)


# -- the repro compile subcommand -------------------------------------------------


class TestCompileCommand:
    def run_cli(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_summary_output(self, capsys):
        code, out, _ = self.run_cli(
            capsys, "compile", "-e", FAC, "--tools", "profile"
        )
        assert code == 0
        assert "engine: codegen" in out
        assert "monitors: 1 (profile)" in out
        assert "instrumented sites: 1" in out
        assert "--emit-source" in out

    def test_emit_source_prints_residual_python(self, capsys):
        code, out, _ = self.run_cli(
            capsys, "compile", "-e", FAC, "--tools", "profile", "--emit-source"
        )
        assert code == 0
        assert "def _program(_rt):" in out
        assert "_pre(0, " in out and "_post(0, " in out
        # The printed source is the exact artifact the engine runs.
        assert out == generate_program(parse(FAC), [ProfilerMonitor()]).source

    def test_emit_source_to_file(self, capsys, tmp_path):
        target = tmp_path / "residual.py"
        code, out, _ = self.run_cli(
            capsys, "compile", "-e", "1 + 2", "--emit-source",
            "--output", str(target),
        )
        assert code == 0 and out == ""
        assert "def _program(_rt):" in target.read_text()

    def test_unclaimed_annotations_are_erased(self, capsys):
        code, out, _ = self.run_cli(
            capsys, "compile", "-e", FAC, "--emit-source"
        )
        assert code == 0
        assert "_pre(" not in out  # no stack claims the label: erased

    def test_rejects_unsupported_language(self, capsys):
        code, _, err = self.run_cli(
            capsys, "compile", "-e", "1 + 2", "--language", "lazy"
        )
        assert code == 1
        assert "engine='codegen'" in err


# -- engine flag end to end -------------------------------------------------------


class TestEngineFlag:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_run_subcommand_accepts_every_engine(self, capsys, engine):
        from repro.cli import main

        code = main(["run", "-e", FAC, "--tools", "profile", "--engine", engine])
        out = capsys.readouterr().out
        assert code == 0
        assert "720" in out
