"""Tests for the residual-program simplifier."""

import pytest
from hypothesis import given, settings

from repro.errors import EvalError
from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import ProfilerMonitor
from repro.partial_eval.online import specialize
from repro.partial_eval.postprocess import simplify, specialize_and_simplify
from repro.syntax.ast import Annotated, Const, If, Let, Letrec, node_count
from repro.syntax.parser import parse
from repro.syntax.pretty import pretty

from tests.generators import closed_program


class TestFolding:
    def test_constant_arithmetic(self):
        assert simplify(parse("1 + 2 * 3")) == Const(7)

    def test_folding_that_would_raise_is_kept(self):
        expr = parse("1 / 0")
        assert simplify(expr) == expr

    def test_if_constant_condition(self):
        assert simplify(parse("if true then 1 else oops")) == Const(1)
        assert simplify(parse("if false then oops else 2")) == Const(2)

    def test_if_dynamic_condition_kept(self):
        expr = parse("if b then 1 else 2")
        assert simplify(expr) == expr

    def test_cascaded_folding(self):
        assert simplify(parse("if 1 < 2 then 10 + 10 else 0")) == Const(20)


class TestLets:
    def test_atom_let_inlined(self):
        assert simplify(parse("let x = 5 in x + x")) == Const(10)

    def test_variable_let_inlined_when_used(self):
        assert simplify(parse("let a = y in a + 1")) == parse("y + 1")

    def test_dead_value_let_dropped(self):
        assert simplify(parse("let f = lambda x. x in 7")) == Const(7)

    def test_dead_effectful_let_kept(self):
        expr = parse("let d = hd [] in 7")
        assert simplify(expr) == expr

    def test_dead_unbound_variable_let_kept(self):
        expr = Let("d", parse("zz"), Const(7))
        assert simplify(expr) == expr

    def test_administrative_beta(self):
        assert simplify(parse("(lambda x. x + 1) 41")) == Const(42)

    def test_beta_on_unused_var_argument_kept(self):
        expr = parse("(lambda x. 7) zz")
        assert simplify(expr) == expr


class TestLetrec:
    def test_unused_binding_dropped(self):
        expr = parse(
            "letrec used = lambda x. used x and unused = lambda y. y in used"
        )
        simplified = simplify(expr)
        assert isinstance(simplified, Letrec)
        assert [name for name, _ in simplified.bindings] == ["used"]

    def test_transitively_used_bindings_kept(self):
        expr = parse(
            "letrec a = lambda x. b x and b = lambda y. a y and c = lambda z. z "
            "in a"
        )
        simplified = simplify(expr)
        assert {name for name, _ in simplified.bindings} == {"a", "b"}

    def test_fully_unused_letrec_removed(self):
        expr = parse("letrec f = lambda x. f x in 42")
        assert simplify(expr) == Const(42)


class TestAnnotations:
    def test_annotations_never_removed(self):
        expr = parse("{p}: (1 + 2)")
        simplified = simplify(expr)
        assert isinstance(simplified, Annotated)
        assert simplified == Annotated(expr.annotation, Const(3))

    def test_monitoring_preserved_through_simplification(self):
        program = parse(
            "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac 3"
        )
        simplified = simplify(program)
        original = run_monitored(strict, program, ProfilerMonitor())
        after = run_monitored(strict, simplified, ProfilerMonitor())
        assert original.answer == after.answer
        assert original.report() == after.report()


class TestPipeline:
    def test_specialize_and_simplify(self):
        program = parse(
            "letrec pow = lambda n. lambda x. "
            "if n = 0 then 1 else x * (pow (n - 1) x) in pow 3 (y + 0)"
        )
        raw = specialize(program).residual
        cleaned = specialize_and_simplify(program).residual
        # The shared work stays let-bound (it is used three times and is
        # not atomic); the simplifier must not duplicate it.
        assert node_count(cleaned) <= node_count(raw)
        assert pretty(cleaned) == "let x_0 = y + 0 in x_0 * (x_0 * (x_0 * 1))"

    def test_cleans_administrative_chains(self):
        expr = parse("let a = 1 in let b = a in let f = lambda q. q in b + b")
        assert simplify(expr) == Const(2)

    def test_size_never_grows(self):
        for source in ("1 + 2", "let x = 1 in x", "if a then 1 + 1 else 2 * 2"):
            expr = parse(source)
            assert node_count(simplify(expr)) <= node_count(expr)


@settings(max_examples=100, deadline=None)
@given(closed_program())
def test_simplify_preserves_answers(program):
    simplified = simplify(program)
    original = strict.evaluate(program, max_steps=2_000_000)
    after = strict.evaluate(simplified, max_steps=2_000_000)
    assert original == after


@settings(max_examples=60, deadline=None)
@given(closed_program())
def test_simplify_preserves_monitoring(program):
    from repro.monitors import LabelCounterMonitor

    simplified = simplify(program)
    original = run_monitored(
        strict, program, LabelCounterMonitor(), max_steps=2_000_000
    )
    after = run_monitored(
        strict, simplified, LabelCounterMonitor(), max_steps=2_000_000
    )
    assert original.answer == after.answer
    assert original.report() == after.report()
