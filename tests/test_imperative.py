"""Tests for the ``L_imp`` imperative language module."""

import pytest

from repro.errors import EvalError, StepLimitExceeded, UnboundIdentifierError
from repro.languages.imperative import (
    AnnotatedCmd,
    Assign,
    Emit,
    IfC,
    Local,
    Seq,
    Skip,
    Store,
    While,
    binop,
    const,
    imperative,
    seq,
    var,
)
from repro.monitoring.derive import run_monitored
from repro.monitoring.spec import FunctionSpec, MonitorSpec
from repro.syntax.annotations import Label
from repro.syntax.ast import Annotated


class TestStore:
    def test_update_is_persistent(self):
        s0 = Store({"x": 1})
        s1 = s0.update("x", 2)
        assert s0.lookup("x") == 1
        assert s1.lookup("x") == 2

    def test_lookup_missing(self):
        with pytest.raises(UnboundIdentifierError):
            Store().lookup("x")

    def test_drop(self):
        s = Store({"x": 1}).drop("x")
        assert "x" not in s

    def test_equality(self):
        assert Store({"x": 1}) == Store({"x": 1})
        assert Store({"x": 1}) != Store({"x": 2})


class TestCommands:
    def test_skip(self):
        bindings, output = imperative.run_to_store(Skip())
        assert bindings == {}
        assert output == ()

    def test_assign(self):
        bindings, _ = imperative.run_to_store(Assign("x", const(5)))
        assert bindings == {"x": 5}

    def test_seq_order(self):
        program = seq(Assign("x", const(1)), Assign("x", binop("+", var("x"), const(1))))
        bindings, _ = imperative.run_to_store(program)
        assert bindings == {"x": 2}

    def test_if_command(self):
        program = seq(
            Assign("x", const(3)),
            IfC(binop("<", var("x"), const(5)), Assign("y", const(1)), Assign("y", const(2))),
        )
        bindings, _ = imperative.run_to_store(program)
        assert bindings["y"] == 1

    def test_while_loop(self):
        program = seq(
            Assign("i", const(0)),
            Assign("sum", const(0)),
            While(
                binop("<", var("i"), const(10)),
                seq(
                    Assign("sum", binop("+", var("sum"), var("i"))),
                    Assign("i", binop("+", var("i"), const(1))),
                ),
            ),
        )
        bindings, _ = imperative.run_to_store(program)
        assert bindings["sum"] == 45

    def test_while_zero_iterations(self):
        program = While(binop("<", const(1), const(0)), Assign("x", const(1)))
        bindings, _ = imperative.run_to_store(program)
        assert "x" not in bindings

    def test_emit(self):
        program = seq(Emit(const(1)), Emit(const(2)))
        _, output = imperative.run_to_store(program)
        assert output == (1, 2)

    def test_local_scoping(self):
        program = seq(
            Assign("x", const(1)),
            Local("x", const(99), Emit(var("x"))),
            Emit(var("x")),
        )
        bindings, output = imperative.run_to_store(program)
        assert output == (99, 1)
        assert bindings["x"] == 1

    def test_local_fresh_variable_dropped(self):
        program = Local("tmp", const(1), Skip())
        bindings, _ = imperative.run_to_store(program)
        assert "tmp" not in bindings

    def test_divergent_while_detected(self):
        program = While(const(True), Skip())
        with pytest.raises(StepLimitExceeded):
            imperative.run_to_store(program, max_steps=10_000)

    def test_non_boolean_condition(self):
        with pytest.raises(EvalError):
            imperative.run_to_store(IfC(const(1), Skip(), Skip()))

    def test_expressions_cannot_apply_closures(self):
        # L_imp expressions only apply primitives.
        from repro.syntax.ast import App, Lam, Var as EVar, Const as EConst

        program = Assign("x", App(Lam("y", EVar("y")), EConst(1)))
        with pytest.raises(EvalError):
            imperative.run_to_store(program)


class TestMonitoring:
    def test_annotated_command_post_sees_updated_store(self):
        observed = []

        spy = FunctionSpec(
            key="spy",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            post=lambda ann, term, ctx, result, st: (
                observed.append(result.lookup("x")),
                st,
            )[1],
        )
        program = AnnotatedCmd(Label("a"), Assign("x", const(7)))
        run_monitored(imperative, program, spy)
        assert observed == [7]

    def test_annotated_command_pre_sees_old_store(self):
        observed = []
        spy = FunctionSpec(
            key="spy",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            pre=lambda ann, term, ctx, st: (
                observed.append(ctx.lookup("x") if "x" in ctx else None),
                st,
            )[1],
        )
        program = seq(
            Assign("x", const(1)),
            AnnotatedCmd(Label("a"), Assign("x", const(2))),
        )
        run_monitored(imperative, program, spy)
        assert observed == [1]

    def test_annotated_expression_inside_command(self):
        counter = FunctionSpec(
            key="count",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: 0,
            pre=lambda ann, term, ctx, st: st + 1,
        )
        program = seq(
            Assign("i", const(0)),
            While(
                binop("<", var("i"), const(3)),
                Assign("i", Annotated(Label("tick"), binop("+", var("i"), const(1)))),
            ),
        )
        result = run_monitored(imperative, program, counter)
        assert result.report() == 3

    def test_while_loop_monitored_per_iteration(self):
        counter = FunctionSpec(
            key="count",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: 0,
            pre=lambda ann, term, ctx, st: st + 1,
        )
        program = seq(
            Assign("i", const(0)),
            While(
                binop("<", var("i"), const(4)),
                AnnotatedCmd(
                    Label("body"), Assign("i", binop("+", var("i"), const(1)))
                ),
            ),
        )
        result = run_monitored(imperative, program, counter)
        assert result.report() == 4
        assert result.answer[0]["i"] == 4


class TestNormalizeSeq:
    def test_reassociation(self):
        from repro.languages.imperative import normalize_seq

        a, b, c = Assign("a", const(1)), Assign("b", const(2)), Assign("c", const(3))
        left = Seq(Seq(a, b), c)
        right = Seq(a, Seq(b, c))
        assert normalize_seq(left) == normalize_seq(right)

    def test_recurses_into_structures(self):
        from repro.languages.imperative import normalize_seq

        a, b, c = Assign("a", const(1)), Assign("b", const(2)), Assign("c", const(3))
        loop_left = While(const(False), Seq(Seq(a, b), c))
        loop_right = While(const(False), Seq(a, Seq(b, c)))
        assert normalize_seq(loop_left) == normalize_seq(loop_right)

    def test_semantics_preserved(self):
        from repro.languages.imperative import normalize_seq

        program = Seq(
            Seq(Assign("x", const(1)), Assign("y", binop("+", var("x"), const(1)))),
            Emit(var("y")),
        )
        assert imperative.run_to_store(normalize_seq(program)) == imperative.run_to_store(
            program
        )


class TestHelpers:
    def test_seq_empty_is_skip(self):
        assert isinstance(seq(), Skip)

    def test_seq_single(self):
        command = Assign("x", const(1))
        assert seq(command) is command

    def test_walk_covers_expressions(self):
        program = seq(Assign("x", binop("+", const(1), const(2))), Emit(var("x")))
        names = [type(node).__name__ for node in program.walk()]
        assert "Assign" in names
        assert "App" in names
        assert "Emit" in names
