"""Tests for L_exc residual code generation."""

import pytest

from repro.languages.exceptions import (
    UncaughtException,
    exceptions_language,
    parse_exc,
)
from repro.monitoring.derive import run_monitored
from repro.monitors import LabelCounterMonitor, StepperMonitor, TracerMonitor
from repro.partial_eval.exc_codegen import generate_exc_program

PROGRAMS = {
    "no_raise": ("try 1 + 1 catch e. 99", 2),
    "caught": ("try raise 41 catch e. e + 1", 42),
    "aborts_pending": ("try 100 * (raise 7) catch e. e", 7),
    "nested_inner": ("try (try raise 1 catch a. a + 10) catch b. b + 100", 11),
    "reraise": ("try (try raise 1 catch a. raise (a + 1)) catch b. b * 10", 20),
    "dynamic_handler": (
        "let thrower = lambda x. raise x in try thrower 5 catch e. e * 2",
        10,
    ),
    "deep_unwind": (
        "letrec dig = lambda n. if n = 0 then raise n else 1 + dig (n - 1) in "
        "try dig 100 catch e. e - 1",
        -1,
    ),
    "value_payload": ("try raise [1, 2] catch e. hd e", 1),
    "plain_recursion": (
        "letrec fac = lambda x. if x = 0 then 1 else x * fac (x - 1) in fac 5",
        120,
    ),
}


@pytest.mark.parametrize("name", sorted(PROGRAMS), ids=sorted(PROGRAMS))
def test_residual_matches_interpreter(name):
    source, expected = PROGRAMS[name]
    program = parse_exc(source)
    assert exceptions_language.evaluate(program) == expected
    assert generate_exc_program(program).evaluate() == expected


class TestUncaught:
    def test_uncaught_surfaces_as_same_error(self):
        program = parse_exc("1 + raise 13")
        with pytest.raises(UncaughtException) as interp_exc:
            exceptions_language.evaluate(program)
        with pytest.raises(UncaughtException) as residual_exc:
            generate_exc_program(program).evaluate()
        assert interp_exc.value.value == residual_exc.value.value == 13


class TestMonitoredResiduals:
    def test_counter_parity(self):
        program = parse_exc("try {p}: (1 + raise 5) catch e. {q}: (e * 2)")
        interp = run_monitored(
            exceptions_language, program, LabelCounterMonitor()
        )
        generated = generate_exc_program(program, LabelCounterMonitor())
        answer, states = generated.run()
        assert answer == interp.answer == 10
        assert states.get("count") == interp.state_of("count") == {"p": 1, "q": 1}

    def test_post_discarded_on_abort(self):
        program = parse_exc("try {p}: (raise 1) catch e. e")
        interp = run_monitored(exceptions_language, program, StepperMonitor())
        generated = generate_exc_program(program, StepperMonitor())
        answer, states = generated.run()
        monitor = interp.monitors[0]
        interp_kinds = [e.kind for e in monitor.events(interp.state_of(monitor))]
        residual_kinds = [e.kind for e in monitor.events(states.get("step"))]
        assert interp_kinds == residual_kinds == ["enter"]

    def test_tracer_unreturned_calls_parity(self):
        program = parse_exc(
            "letrec f = lambda x. {f(x)}: (if x = 0 then raise 99 else f (x - 1)) in "
            "try f 2 catch e. e"
        )
        interp = run_monitored(exceptions_language, program, TracerMonitor())
        generated = generate_exc_program(program, TracerMonitor())
        monitor = TracerMonitor()
        assert generated.report(monitor) == interp.report()

    def test_source_uses_host_try(self):
        program = parse_exc("try raise 1 catch e. e")
        generated = generate_exc_program(program)
        assert "try:" in generated.source
        assert "except _raised as" in generated.source
