"""Tests for the monitor-state vector and monitor spec plumbing."""

import pytest

from repro.monitoring.spec import FunctionSpec, MonitorSpec
from repro.monitoring.state import MonitorStateVector, SingleSlotVector
from repro.syntax.annotations import Label


class TestStateVector:
    def test_initial_from_monitors(self):
        specs = [
            FunctionSpec("a", lambda x: x, lambda: 0),
            FunctionSpec("b", lambda x: x, lambda: "s"),
        ]
        vector = MonitorStateVector.initial(specs)
        assert vector.get("a") == 0
        assert vector.get("b") == "s"

    def test_set_is_persistent(self):
        vector = MonitorStateVector({"a": 1})
        updated = vector.set("a", 2)
        assert vector.get("a") == 1
        assert updated.get("a") == 2

    def test_view_read_only(self):
        vector = MonitorStateVector({"a": 1, "b": 2})
        view = vector.view(("a",))
        assert view["a"] == 1
        with pytest.raises(TypeError):
            view["a"] = 5  # type: ignore[index]

    def test_keys_and_len(self):
        vector = MonitorStateVector({"a": 1, "b": 2})
        assert set(vector.keys()) == {"a", "b"}
        assert len(vector) == 2
        assert "a" in vector

    def test_as_dict_copy(self):
        vector = MonitorStateVector({"a": 1})
        d = vector.as_dict()
        d["a"] = 99
        assert vector.get("a") == 1


class TestSingleSlotVector:
    """The copy-free fast path ``initial`` picks for one-monitor stacks."""

    def test_initial_picks_single_slot(self):
        spec = FunctionSpec("a", lambda x: x, lambda: 0)
        vector = MonitorStateVector.initial([spec])
        assert type(vector) is SingleSlotVector
        assert vector.get("a") == 0

    def test_initial_keeps_dict_for_multiple_monitors(self):
        specs = [
            FunctionSpec("a", lambda x: x, lambda: 0),
            FunctionSpec("b", lambda x: x, lambda: 1),
        ]
        vector = MonitorStateVector.initial(specs)
        assert type(vector) is MonitorStateVector

    def test_set_same_key_stays_single_slot(self):
        vector = SingleSlotVector("a", 1)
        updated = vector.set("a", 2)
        assert type(updated) is SingleSlotVector
        assert updated.get("a") == 2
        assert vector.get("a") == 1  # persistent

    def test_set_new_key_upgrades_to_dict(self):
        vector = SingleSlotVector("a", 1)
        upgraded = vector.set("b", 2)
        assert type(upgraded) is MonitorStateVector
        assert upgraded.get("a") == 1
        assert upgraded.get("b") == 2

    def test_upgrade_is_persistent_and_composable(self):
        # The original single-slot vector must be untouched by the
        # upgrade, and the upgraded vector must keep behaving like a
        # full state vector under further updates.
        vector = SingleSlotVector("a", 1)
        upgraded = vector.set("b", 2)
        assert vector.as_dict() == {"a": 1}
        assert len(vector) == 1
        again = upgraded.set("a", 10).set("c", 3)
        assert upgraded.as_dict() == {"a": 1, "b": 2}  # persistent too
        assert again.as_dict() == {"a": 10, "b": 2, "c": 3}

    def test_get_missing_key_raises(self):
        with pytest.raises(KeyError):
            SingleSlotVector("a", 1).get("zzz")

    def test_mapping_protocol(self):
        vector = SingleSlotVector("a", 1)
        assert set(vector.keys()) == {"a"}
        assert len(vector) == 1
        assert "a" in vector
        assert "b" not in vector
        assert vector.as_dict() == {"a": 1}

    def test_view_read_only(self):
        vector = SingleSlotVector("a", 1)
        view = vector.view(("a",))
        assert view["a"] == 1
        with pytest.raises(TypeError):
            view["a"] = 5  # type: ignore[index]


class TestMonitorSpecDefaults:
    def test_default_pre_post_identity(self):
        spec = MonitorSpec()
        assert spec.pre(None, None, None, "state") == "state"
        assert spec.post(None, None, None, None, "state") == "state"

    def test_default_report_identity(self):
        assert MonitorSpec().report({"x": 1}) == {"x": 1}

    def test_recognize_abstract(self):
        with pytest.raises(NotImplementedError):
            MonitorSpec().recognize(Label("x"))

    def test_function_spec_defaults(self):
        spec = FunctionSpec("k", lambda a: a, lambda: 7)
        assert spec.initial_state() == 7
        assert spec.pre(None, None, None, 7) == 7
        assert spec.post(None, None, None, None, 7) == 7
        assert spec.report(7) == 7

    def test_function_spec_custom_report(self):
        spec = FunctionSpec("k", lambda a: a, lambda: 3, report=lambda s: s * 2)
        assert spec.report(3) == 6

    def test_function_spec_observing(self):
        from repro.languages import strict
        from repro.monitoring.derive import run_monitored
        from repro.monitors import LabelCounterMonitor
        from repro.syntax.annotations import Tagged
        from repro.syntax.parser import parse

        seen = []
        observer = FunctionSpec(
            key="obs",
            recognize=lambda a: a.payload if isinstance(a, Tagged) and a.tool == "w" else None,
            initial=lambda: None,
            pre=lambda ann, term, ctx, st, inner: (seen.append(dict(inner["count"])), st)[1],
            observes=("count",),
        )
        program = parse("({p}: 1) + ({w: x}: 2)")
        run_monitored(strict, program, [LabelCounterMonitor(), observer])
        assert seen == [{}]  # right operand first: observer fires before {p}

    def test_repr(self):
        assert "k" in repr(FunctionSpec("k", lambda a: a, lambda: 0))
