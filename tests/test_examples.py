"""Smoke tests: every example script must run cleanly end to end."""

import io
import pathlib
import runpy
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))

#: Something each example must print, so a silently broken script fails.
EXPECTED_FRAGMENTS = {
    "quickstart.py": "counter state <A, B>: (1, 5)",
    "paper_section8.py": "[FAC returns 6]",
    "composed_monitors.py": "profile: {'fac': 4, 'mul': 3}",
    "specialization_pipeline.py": "residual program: let x_0 = y + 1",
    "debugger_session.py": "stopped at merge",
    "imperative_monitoring.py": "demon fired at:",
    "lazy_vs_strict.py": "lazy answer: 42",
    "time_travel_queries.py": "who calls filter?",
    "exceptions_and_unwinding.py": "still unmatched at program end",
    "quantitative_profiling.py": "total collatz steps for 2..30: 441",
}


def test_every_example_has_an_expectation():
    names = {script.name for script in EXAMPLE_SCRIPTS}
    assert names == set(EXPECTED_FRAGMENTS), (
        "examples/ and EXPECTED_FRAGMENTS out of sync; add an expectation "
        "for new examples"
    )


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=lambda path: path.name
)
def test_example_runs(script):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(script), run_name="__main__")
    output = buffer.getvalue()
    assert EXPECTED_FRAGMENTS[script.name] in output
