"""The trace backend's moving parts: codec, writer, sampling, wiring.

The differential suite (``test_trace_equivalence``) proves fold ≡
inline; this file pins down everything else the backend promises — a
versioned, deterministic, self-describing file format, seeded sampling
that is reproducible across runs *and* executors, per-site filtering,
and the ``mode="record"`` wiring through ``run_monitored``, the batch
runner and the runtime facade.
"""

import json
import os

import pytest

from repro.languages.imperative import imperative
from repro.languages.strict import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import LabelCounterMonitor, ProfilerMonitor, TracerMonitor
from repro.observability.metrics import RunMetrics
from repro.runtime import RunConfig, RunRequest, Runtime, run_batch
from repro.syntax.parser import parse
from repro.tracing import (
    OpaqueValue,
    TraceError,
    TraceFormatError,
    TraceVersionError,
    analyze_trace,
    read_trace,
    record,
)
from repro.tracing.schema import (
    TRACE_VERSION,
    build_site_table,
    canonical_json,
    decode_value,
    encode_value,
    sample_includes,
)

FAC = "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac 6"
GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")


def record_fac(path, **kwargs):
    return record(strict, parse(FAC), str(path), **kwargs)


# -- the value codec -------------------------------------------------------------


class TestValueCodec:
    @pytest.mark.parametrize(
        "value", [0, -3, 17, True, False, "hello", None, 2.5]
    )
    def test_scalars_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_object_language_lists_round_trip(self):
        nested = [1, [2, 3], "x"]
        encoded = encode_value(nested)
        assert decode_value(encoded) == nested

    def test_store_round_trips_as_bindings(self):
        from repro.languages.imperative import Store

        store = Store({"a": 1, "b": 2})
        encoded = encode_value(store)
        assert encoded["%"] == "store"
        assert decode_value(encoded).as_dict() == {"a": 1, "b": 2}

    def test_functions_become_display_opaques(self):
        answer = strict.evaluate(parse("lambda x. x + 1"))
        from repro.semantics.values import is_function, value_to_string

        decoded = decode_value(encode_value(answer))
        assert isinstance(decoded, OpaqueValue)
        assert value_to_string(decoded) == value_to_string(answer)
        assert is_function(decoded)

    def test_unknown_tag_is_a_trace_error(self):
        with pytest.raises(TraceError):
            decode_value({"%": "warp-core", "x": 1})

    def test_canonical_json_is_key_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [2]}) == '{"a":[2],"b":1}'


# -- sampling --------------------------------------------------------------------


class TestSampling:
    def test_rate_bounds(self):
        assert sample_includes(0, 1, 5, 1.0) is True
        assert sample_includes(0, 1, 5, 0.0) is False

    def test_decision_is_a_pure_function_of_seed_site_occurrence(self):
        picks = [sample_includes(7, 3, occ, 0.5) for occ in range(64)]
        again = [sample_includes(7, 3, occ, 0.5) for occ in range(64)]
        assert picks == again
        assert any(picks) and not all(picks)

    def test_same_seed_means_byte_identical_traces(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (first, second):
            record_fac(path, sample_rate=0.5, seed=7)
        assert first.read_bytes() == second.read_bytes()

    def test_different_seeds_sample_differently(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        record_fac(first, sample_rate=0.5, seed=7)
        record_fac(second, sample_rate=0.5, seed=8)
        assert first.read_bytes() != second.read_bytes()

    def test_rate_zero_keeps_header_and_answer_only(self, tmp_path):
        path = tmp_path / "t.jsonl"
        result = record_fac(path, sample_rate=0.0)
        assert result.events == 0
        assert result.sampled_out > 0
        trace = read_trace(str(path))
        assert list(trace.events) == []
        assert trace.answer() == 720

    def test_bad_rate_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            record_fac(tmp_path / "t.jsonl", sample_rate=1.5)

    def test_sampled_fold_counts_only_recorded_activations(self, tmp_path):
        path = tmp_path / "t.jsonl"
        full = tmp_path / "full.jsonl"
        record_fac(path, sample_rate=0.5, seed=7)
        record_fac(full)
        sampled = analyze_trace(str(path), [LabelCounterMonitor()])
        everything = analyze_trace(str(full), [LabelCounterMonitor()])
        assert 0 < sampled.report("count")["fac"] < everything.report("count")["fac"]

    def test_executor_choice_does_not_change_trace_bytes(self, tmp_path):
        """Thread- and process-pool record runs write identical traces."""
        contents = {}
        for executor in ("thread", "process"):
            record_dir = tmp_path / executor
            config = RunConfig(
                mode="record",
                record_dir=str(record_dir),
                sample_rate=0.5,
                trace_seed=3,
            )
            with Runtime(config=config, workers=1, executor=executor) as rt:
                [result] = rt.run_batch(
                    [{"program": FAC, "tools": "count"}]
                )
            assert result.ok, result.error
            assert result.trace and os.path.exists(result.trace)
            with open(result.trace, "rb") as handle:
                contents[executor] = handle.read()
        assert contents["thread"] == contents["process"]


# -- the file format -------------------------------------------------------------


class TestTraceFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        result = record_fac(path, config=RunConfig(metrics=RunMetrics()))
        assert result.answer == 720
        trace = read_trace(str(path))
        assert trace.version == TRACE_VERSION
        assert trace.language == "strict"
        assert trace.site_count == 1
        assert trace.answer() == 720
        assert len(trace.events) == result.events
        phases = {event.phase for event in trace.events}
        assert phases == {"pre", "post"}

    def test_header_embeds_reusable_source(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_fac(path)
        trace = read_trace(str(path))
        reparsed = parse(trace.program_source)
        assert len(build_site_table(reparsed)) == 1

    def test_site_filter_by_selector(self, tmp_path):
        source = "({p0}: 1) + ({p1}: 2)"
        path = tmp_path / "t.jsonl"
        result = record(strict, parse(source), str(path), sites=["p1"])
        assert result.sites == 2
        assert result.enabled_sites == 1
        trace = read_trace(str(path))
        assert {event.site for event in trace.events} == {1}

    def test_site_filter_by_monitor_claims(self, tmp_path):
        # A bare label counter claims bare labels but not another
        # namespace's tagged sites: the recorder skips what no monitor
        # in the intended stack would look at.
        source = "({trace: t}: 1) + ({p0}: 2)"
        path = tmp_path / "t.jsonl"
        result = record(
            strict, parse(source), str(path), monitors=[LabelCounterMonitor()]
        )
        assert result.sites == 2
        assert result.enabled_sites == 1

    def test_wrong_program_rejected_at_analyze(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_fac(path)
        with pytest.raises(TraceFormatError, match="not the program"):
            analyze_trace(
                str(path), [LabelCounterMonitor()], program="({p0}: 1) + ({p1}: 2)"
            )

    def test_version_bump_is_a_clean_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_fac(path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["trace_version"] = TRACE_VERSION + 1
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceVersionError, match="re-record"):
            read_trace(str(path))

    def test_empty_file_is_a_format_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            read_trace(str(path))

    def test_truncated_tail_is_diagnosed_and_recoverable(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_fac(path)
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # cut into the end record
        with pytest.raises(TraceFormatError, match="allow-truncated"):
            read_trace(str(path))
        trace = read_trace(str(path), allow_truncated=True)
        assert trace.truncated
        result = analyze_trace(
            trace, [LabelCounterMonitor()], allow_truncated=True
        )
        assert result.truncated
        assert result.report("count")["fac"] > 0

    def test_crashed_run_leaves_truncated_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        from repro.errors import EvalError

        with pytest.raises(EvalError):
            record(strict, parse("{p0}: (1 + 1 / 0)"), str(path))
        trace = read_trace(str(path), allow_truncated=True)
        assert trace.truncated
        result = analyze_trace(
            trace, [LabelCounterMonitor()], allow_truncated=True
        )
        assert result.answer is None
        assert result.report("count")["p0"] == 1

    def test_unknown_event_type_is_located(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_fac(path)
        lines = path.read_text().splitlines()
        lines.insert(1, '{"t":"zap"}')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match=r":2: unknown event type"):
            read_trace(str(path))


# -- golden traces ---------------------------------------------------------------


class TestGoldenTraces:
    """Pinned trace files: the on-disk format is a compatibility surface.

    If an intentional format change breaks these, bump ``TRACE_VERSION``
    and regenerate (``python -m tests.test_tracing``) — readers must
    never silently misread an old file.
    """

    def test_golden_fac_trace_bytes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_fac(path, config=RunConfig(metrics=RunMetrics()))
        golden = os.path.join(GOLDEN_DIR, "trace_fac.jsonl")
        assert path.read_text() == open(golden).read()

    def test_golden_sampled_trace_bytes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_fac(path, sample_rate=0.5, seed=7)
        golden = os.path.join(GOLDEN_DIR, "trace_fac_sampled.jsonl")
        assert path.read_text() == open(golden).read()

    def test_golden_trace_still_analyzes(self):
        golden = os.path.join(GOLDEN_DIR, "trace_fac.jsonl")
        trace = read_trace(golden)
        assert trace.version == TRACE_VERSION
        result = analyze_trace(golden, [LabelCounterMonitor()], metrics=True)
        assert result.answer == 720
        assert result.report("count")["fac"] == 7
        assert result.metrics.steps > 0


# -- mode="record" wiring --------------------------------------------------------


class TestRecordModeWiring:
    def test_run_monitored_record_mode(self, tmp_path):
        config = RunConfig(mode="record", record_dir=str(tmp_path))
        result = run_monitored(
            strict, parse(FAC), [LabelCounterMonitor()], config=config
        )
        assert result.answer == 720
        assert result.trace and os.path.exists(result.trace)
        fold = analyze_trace(result.trace, [LabelCounterMonitor()])
        assert fold.report("count")["fac"] == 7

    def test_record_mode_requires_record_dir(self):
        config = RunConfig(mode="record")
        with pytest.raises(TraceError, match="record_dir"):
            run_monitored(strict, parse(FAC), [LabelCounterMonitor()], config=config)

    def test_evaluate_reports_trace_path(self, tmp_path):
        from repro.toolbox.registry import evaluate

        config = RunConfig(mode="record", record_dir=str(tmp_path))
        result = evaluate("count", FAC, config=config)
        assert result.answer == 720
        assert result.trace and os.path.exists(result.trace)

    def test_batch_request_record_mode(self, tmp_path):
        results = run_batch(
            [
                {
                    "program": FAC,
                    "tools": "count",
                    "mode": "record",
                    "record_dir": str(tmp_path),
                },
                {"program": "6 * 7"},
            ]
        )
        assert [r.ok for r in results] == [True, True]
        assert results[0].trace and os.path.exists(results[0].trace)
        assert results[1].trace is None
        wire = results[0].to_dict()
        assert wire["trace"] == results[0].trace
        from repro.runtime.batch import RunResult

        assert RunResult.from_dict(wire).trace == results[0].trace

    def test_imp_record_round_trip(self, tmp_path):
        from repro.languages.imp_syntax import parse_imp

        source = "x := 0; while x < 4 do begin {loop}: x := x + 1 end; emit x"
        path = tmp_path / "t.jsonl"
        record(imperative, parse_imp(source), str(path))
        fold = analyze_trace(str(path), [LabelCounterMonitor()])
        assert fold.report("count")["loop"] == 4

    def test_invalid_mode_rejected(self):
        with pytest.raises(Exception):
            RunConfig(mode="postal").validate()


def regenerate_goldens() -> None:
    record(
        strict,
        parse(FAC),
        os.path.join(GOLDEN_DIR, "trace_fac.jsonl"),
        config=RunConfig(metrics=RunMetrics()),
    )
    record(
        strict,
        parse(FAC),
        os.path.join(GOLDEN_DIR, "trace_fac_sampled.jsonl"),
        sample_rate=0.5,
        seed=7,
    )


if __name__ == "__main__":
    regenerate_goldens()
