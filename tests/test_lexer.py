"""Unit tests for the lexer."""

import pytest

from repro.errors import LexError
from repro.syntax import lexer
from repro.syntax.lexer import Token, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source) if t.kind != lexer.EOF]


class TestBasicTokens:
    def test_integer(self):
        tokens = tokenize("42")
        assert tokens[0].kind == lexer.INT
        assert tokens[0].value == "42"

    def test_float(self):
        tokens = tokenize("3.14")
        assert tokens[0].kind == lexer.FLOAT
        assert tokens[0].value == "3.14"

    def test_integer_then_dot_is_not_float(self):
        # "1." is INT followed by DOT (lambda-body dots must not glue).
        assert kinds("1.")[:2] == [lexer.INT, lexer.DOT]

    def test_identifier(self):
        tokens = tokenize("foo")
        assert tokens[0].kind == lexer.IDENT

    def test_identifier_with_primes_and_marks(self):
        assert values("f' g! h?") == ["f'", "g!", "h?"]

    def test_keywords(self):
        for word in ("lambda", "if", "then", "else", "let", "letrec", "in", "and"):
            assert tokenize(word)[0].kind == lexer.KEYWORD

    def test_true_false_are_keywords(self):
        assert tokenize("true")[0].kind == lexer.KEYWORD
        assert tokenize("false")[0].kind == lexer.KEYWORD

    def test_eof_always_present(self):
        assert tokenize("")[-1].kind == lexer.EOF
        assert tokenize("x")[-1].kind == lexer.EOF


class TestOperators:
    @pytest.mark.parametrize(
        "op", ["+", "-", "*", "/", "%", "=", "/=", "<", "<=", ">", ">=", "++", "::"]
    )
    def test_single_operator(self, op):
        tokens = tokenize(f"a {op} b")
        assert tokens[1].kind == lexer.OP
        assert tokens[1].value == op

    def test_cons_vs_colon(self):
        tokens = tokenize("a :: b")
        assert tokens[1].value == "::"
        tokens = tokenize("{x}: e")
        assert [t.kind for t in tokens[:2]] == [lexer.ANNOT, lexer.COLON]

    def test_le_vs_lt(self):
        assert values("a <= b") == ["a", "<=", "b"]
        assert values("a < b") == ["a", "<", "b"]


class TestStrings:
    def test_simple_string(self):
        tokens = tokenize('"hello"')
        assert tokens[0].kind == lexer.STRING
        assert tokens[0].value == "hello"

    def test_escapes(self):
        tokens = tokenize(r'"a\nb\tc\"d\\e"')
        assert tokens[0].value == 'a\nb\tc"d\\e'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unknown_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\x"')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')


class TestAnnotations:
    def test_annotation_captures_raw_text(self):
        tokens = tokenize("{fac(x, y)}: body")
        assert tokens[0].kind == lexer.ANNOT
        assert tokens[0].value == "fac(x, y)"

    def test_unterminated_annotation(self):
        with pytest.raises(LexError):
            tokenize("{abc")

    def test_nested_brace_rejected(self):
        with pytest.raises(LexError):
            tokenize("{a{b}}: x")


class TestTrivia:
    def test_whitespace_ignored(self):
        assert values("  a \t b \n c ") == ["a", "b", "c"]

    def test_hash_comment(self):
        assert values("a # comment here\nb") == ["a", "b"]

    def test_dashdash_comment(self):
        assert values("a -- comment\nb") == ["a", "b"]

    def test_minus_not_comment(self):
        assert values("a - b") == ["a", "-", "b"]

    def test_comment_to_eof(self):
        assert values("a -- trailing") == ["a"]


class TestLocations:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].location.line, tokens[0].location.column) == (1, 1)
        assert (tokens[1].location.line, tokens[1].location.column) == (2, 3)

    def test_offset(self):
        tokens = tokenize("ab cd")
        assert tokens[1].location.offset == 3

    def test_unexpected_character(self):
        with pytest.raises(LexError) as exc:
            tokenize("a @ b")
        assert "@" in str(exc.value)


class TestPunctuation:
    def test_brackets_and_parens(self):
        assert kinds("([,])")[:5] == [
            lexer.LPAREN,
            lexer.LBRACKET,
            lexer.COMMA,
            lexer.RBRACKET,
            lexer.RPAREN,
        ]

    def test_token_repr(self):
        token = tokenize("x")[0]
        assert "IDENT" in repr(token)
        assert isinstance(token, Token)
