"""Tests for the statistics monitor."""

import pytest

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitoring.validate import validate_monitor
from repro.monitors.statistics import NumericSummary, StatisticsMonitor
from repro.syntax.parser import parse


class TestNumericSummary:
    def test_empty(self):
        summary = NumericSummary()
        assert summary.mean is None
        assert summary.variance is None
        assert "no numeric samples" in summary.render()

    def test_single_value(self):
        summary = NumericSummary().add(5)
        assert summary.count == 1
        assert summary.minimum == summary.maximum == 5
        assert summary.mean == 5

    def test_running_statistics(self):
        summary = NumericSummary()
        for value in (1, 2, 3, 4):
            summary = summary.add(value)
        assert summary.count == 4
        assert summary.minimum == 1
        assert summary.maximum == 4
        assert summary.mean == 2.5
        assert summary.variance == pytest.approx(1.25)

    def test_booleans_are_non_numeric(self):
        summary = NumericSummary().add(True)
        assert summary.count == 0
        assert summary.non_numeric == 1

    def test_strings_are_non_numeric(self):
        summary = NumericSummary().add("x")
        assert summary.non_numeric == 1

    def test_immutability(self):
        base = NumericSummary()
        base.add(1)
        assert base.count == 0


class TestStatisticsMonitor:
    def test_per_label_summaries(self):
        program = parse(
            "letrec f = lambda n. if n = 0 then 0 else {v}: n + f (n - 1) in f 4"
        )
        result = run_monitored(strict, program, StatisticsMonitor())
        summary = result.report()["v"]
        # Observed values of {v}: n at n = 4, 3, 2, 1... the annotation
        # binds to the atom n, so values are 1..4 in demand order.
        assert summary.count == 4
        assert (summary.minimum, summary.maximum) == (1, 4)
        assert summary.mean == 2.5

    def test_mixed_types_counted(self):
        program = parse("if {v}: true then {v}: 1 else 2")
        result = run_monitored(strict, program, StatisticsMonitor())
        summary = result.report()["v"]
        assert summary.count == 1
        assert summary.non_numeric == 1

    def test_validates(self):
        assert validate_monitor(StatisticsMonitor()) == []

    def test_render(self):
        program = parse("{v}: 1 + {v}: 3")
        result = run_monitored(strict, program, StatisticsMonitor())
        assert "n=2" in result.report()["v"].render()
