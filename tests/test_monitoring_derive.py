"""Tests for the monitoring-semantics derivation (Definition 4.2)."""

import pytest

from repro.errors import MonitorError
from repro.languages import strict
from repro.monitoring.derive import (
    MonitoredResult,
    check_disjoint,
    derive_all,
    run_monitored,
)
from repro.monitoring.spec import FunctionSpec, MonitorSpec
from repro.monitoring.state import MonitorStateVector
from repro.syntax.annotations import Label, Tagged
from repro.syntax.ast import Annotated, Const
from repro.syntax.parser import parse


def label_counter(key="count", names=None):
    def recognize(annotation):
        if isinstance(annotation, Label) and (names is None or annotation.name in names):
            return annotation
        return None

    return FunctionSpec(
        key=key,
        recognize=recognize,
        initial=lambda: {},
        pre=lambda ann, term, ctx, st: {**st, ann.name: st.get(ann.name, 0) + 1},
    )


class TestBasicDerivation:
    def test_answer_unchanged(self):
        program = parse("{p}: (2 + 3)")
        result = run_monitored(strict, program, label_counter())
        assert result.answer == 5

    def test_pre_called_per_evaluation(self):
        program = parse(
            "letrec f = lambda n. if n = 0 then 0 else {hit}: f (n - 1) in f 4"
        )
        result = run_monitored(strict, program, label_counter())
        assert result.report() == {"hit": 4}

    def test_monitoring_inside_closures(self):
        # The fixpoint is taken after derivation, so behavior appears at
        # all levels of recursion — including closures created before any
        # annotation is reached.
        program = parse("let f = lambda x. {inner}: x in f 1 + f 2")
        result = run_monitored(strict, program, label_counter())
        assert result.report() == {"inner": 2}

    def test_unrecognized_annotations_fall_through(self):
        program = parse("{known}: 1 + {unknown}: 2")
        result = run_monitored(strict, program, label_counter(names={"known"}))
        assert result.answer == 3
        assert result.report() == {"known": 1}

    def test_post_sees_result(self):
        seen = []

        spec = FunctionSpec(
            key="post-spy",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            post=lambda ann, term, ctx, result, st: (seen.append(result), st)[1],
        )
        run_monitored(strict, parse("{p}: (6 * 7)"), spec)
        assert seen == [42]

    def test_pre_sees_context(self):
        seen = []
        spec = FunctionSpec(
            key="ctx-spy",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            pre=lambda ann, term, ctx, st: (seen.append(ctx.lookup("x")), st)[1],
        )
        run_monitored(strict, parse("(lambda x. {p}: x) 9"), spec)
        assert seen == [9]

    def test_evaluation_order_pre_post_nesting(self):
        events = []

        def mk(kind):
            def pre(ann, term, ctx, st):
                events.append(("pre", ann.name))
                return st

            def post(ann, term, ctx, result, st):
                events.append(("post", ann.name))
                return st

            return pre, post

        pre, post = mk("x")
        spec = FunctionSpec(
            key="order",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: None,
            pre=pre,
            post=post,
        )
        run_monitored(strict, parse("{outer}: ({inner}: 1 + 1)"), spec)
        assert events == [
            ("pre", "outer"),
            ("pre", "inner"),
            ("post", "inner"),
            ("post", "outer"),
        ]


class TestMonitoredResult:
    def test_report_single_monitor(self):
        result = run_monitored(strict, parse("{p}: 1"), label_counter())
        assert result.report() == {"p": 1}

    def test_report_by_key(self):
        result = run_monitored(strict, parse("{p}: 1"), label_counter(key="k1"))
        assert result.report("k1") == {"p": 1}

    def test_report_unknown_key(self):
        result = run_monitored(strict, parse("{p}: 1"), label_counter(key="k1"))
        with pytest.raises(MonitorError):
            result.report("nope")

    def test_states_vector(self):
        result = run_monitored(strict, parse("{p}: 1"), label_counter(key="k1"))
        assert isinstance(result.states, MonitorStateVector)
        assert result.state_of("k1") == {"p": 1}


class TestDisjointness:
    def test_overlapping_monitors_rejected(self):
        program = parse("{p}: 1")
        with pytest.raises(MonitorError):
            run_monitored(strict, program, [label_counter("a"), label_counter("b")])

    def test_disjoint_by_names_allowed(self):
        program = parse("{p}: {q}: 1")
        result = run_monitored(
            strict,
            program,
            [label_counter("a", names={"p"}), label_counter("b", names={"q"})],
        )
        assert result.report("a") == {"p": 1}
        assert result.report("b") == {"q": 1}

    def test_duplicate_keys_rejected(self):
        with pytest.raises(MonitorError):
            check_disjoint([label_counter("same"), label_counter("same")], Const(1))

    def test_namespaced_annotations_disjoint(self):
        program = parse("{a: p}: {b: p}: 1")

        def ns_counter(namespace):
            def recognize(annotation):
                if isinstance(annotation, Tagged) and annotation.tool == namespace:
                    return annotation.payload
                return None

            return FunctionSpec(
                key=namespace,
                recognize=recognize,
                initial=lambda: 0,
                pre=lambda ann, term, ctx, st: st + 1,
            )

        result = run_monitored(strict, program, [ns_counter("a"), ns_counter("b")])
        assert result.report("a") == 1
        assert result.report("b") == 1


class TestDeriveAll:
    def test_empty_stack_is_standard(self):
        functional = derive_all(strict.functional(), [])
        assert functional is strict.functional()

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_empty_stack_run_equals_unmonitored(self, engine):
        # run_monitored with no monitors is *exactly* unmonitored
        # evaluation on both engines — same answer, empty state vector,
        # no reports.
        program = parse("{p}: 1 + {q}: 2")  # annotations all unclaimed
        result = run_monitored(strict, program, [], engine=engine)
        assert result.answer == strict.evaluate(program, engine=engine) == 3
        assert len(result.states) == 0
        assert result.reports() == {}
        assert result.healthy()

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_empty_stack_under_quarantine(self, engine):
        # With nothing to fault, a non-default policy changes nothing.
        program = parse("6 * 7")
        result = run_monitored(
            strict, program, [], engine=engine, fault_policy="quarantine"
        )
        assert result.answer == 42
        assert result.faults == ()
        assert result.fault_policy == "quarantine"

    def test_initial_state_vector_of_empty_stack(self):
        vector = MonitorStateVector.initial([])
        assert len(vector) == 0
        assert vector.as_dict() == {}

    def test_state_isolation(self):
        # Each monitor only ever sees (and updates) its own slot.
        program = parse("{p}: {q}: 1")
        a = label_counter("a", names={"p"})
        b = label_counter("b", names={"q"})
        result = run_monitored(strict, program, [a, b])
        assert result.state_of("a") == {"p": 1}
        assert result.state_of("b") == {"q": 1}
