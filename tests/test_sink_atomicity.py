"""JSONL sink atomicity: concurrent emitters never interleave lines.

The serving-path regression (ISSUE PR 7 satellite): ``JsonlSink.emit``
used to make three separate ``write`` calls per event (payload, newline,
optional flush ordering), so two threads sharing one sink could
interleave mid-line and corrupt the JSONL stream — replay tooling then
choked on half-a-record lines.  The fix serializes one pre-rendered
string per event under a lock; these tests hammer that guarantee and pin
the :class:`TaggedSink` decorator the process-pool workers wrap around
it.
"""

import io
import json
import threading

from repro.observability import (
    Event,
    JsonlSink,
    TaggedSink,
    read_events,
    replay,
)

THREADS = 8
EVENTS_PER_THREAD = 250


class TestAtomicEmit:
    def test_eight_threads_every_line_round_trips(self, tmp_path):
        """The acceptance criterion: 8 writers, every line parses + replays."""
        path = tmp_path / "hammer.jsonl"
        sink = JsonlSink(path)
        barrier = threading.Barrier(THREADS)

        def writer(thread_id):
            barrier.wait()  # maximize contention
            for n in range(EVENTS_PER_THREAD):
                sink.emit(
                    Event(
                        seq=thread_id * EVENTS_PER_THREAD + n,
                        type="cache-hit",
                        payload={"thread": thread_id, "n": n, "key": "k" * 40},
                    )
                )

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == THREADS * EVENTS_PER_THREAD
        seen = set()
        for line in lines:
            record = json.loads(line)  # whole, never interleaved
            seen.add((record["payload"]["thread"], record["payload"]["n"]))
        assert len(seen) == THREADS * EVENTS_PER_THREAD  # nothing lost
        summary = replay(read_events(path))
        assert summary.cache_hits == THREADS * EVENTS_PER_THREAD

    def test_emit_is_one_write_call(self):
        """Each event reaches the handle as a single newline-terminated write."""
        writes = []

        class Recorder(io.StringIO):
            def write(self, text):
                writes.append(text)
                return super().write(text)

        sink = JsonlSink(Recorder())
        sink.emit(Event(seq=1, type="step", payload={"node": "If"}))
        sink.emit(Event(seq=2, type="step"))
        assert len(writes) == 2
        assert all(w.endswith("\n") and json.loads(w) for w in writes)

    def test_flush_each_makes_lines_tailable(self, tmp_path):
        path = tmp_path / "tail.jsonl"
        sink = JsonlSink(path, flush_each=True)
        sink.emit(Event(seq=1, type="cache-miss", payload={"compile_time": 0.1}))
        # Visible to a concurrent reader *before* close — the daemon's
        # worker traces are tailed while the process is still running.
        assert json.loads(path.read_text().splitlines()[0])["type"] == "cache-miss"
        sink.close()


class TestTaggedSink:
    def test_tags_merge_into_payload(self):
        inner = JsonlSink(io.StringIO())
        captured = []
        inner.emit = lambda event: captured.append(event)
        sink = TaggedSink(inner, {"worker": 3})
        sink.emit(Event(seq=1, type="serve-request", payload={"id": 9, "ok": True}))
        [event] = captured
        assert event.payload == {"worker": 3, "id": 9, "ok": True}
        assert event.type == "serve-request"

    def test_event_payload_wins_on_collision(self):
        captured = []

        class Capture:
            wants_steps = False

            def emit(self, event):
                captured.append(event)

        sink = TaggedSink(Capture(), {"worker": 3, "id": "tag-side"})
        sink.emit(Event(seq=1, type="serve-request", payload={"id": "event-side"}))
        assert captured[0].payload["id"] == "event-side"
        assert captured[0].payload["worker"] == 3

    def test_wants_steps_and_close_forward(self, tmp_path):
        inner = JsonlSink(tmp_path / "t.jsonl", wants_steps=True)
        sink = TaggedSink(inner, {"worker": 0})
        assert sink.wants_steps is True
        sink.close()
        assert inner._handle is None  # owned handle released by close()
