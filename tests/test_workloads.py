"""Heavier integration workloads exercising the whole system together."""

import pytest

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import CallGraphMonitor, CoverageMonitor, ProfilerMonitor
from repro.partial_eval.codegen import generate_program
from repro.partial_eval.compile import compile_program
from repro.prelude import with_prelude
from repro.semantics.values import to_python_list
from repro.syntax.parser import parse
from repro.toolbox.autoannotate import profile_functions

# N-queens via the prelude: a search-heavy workload with real list work.
NQUEENS = """
letrec safe? = lambda q. lambda d. lambda placed.
    if null? placed then true
    else if hd placed = q then false
    else if hd placed = q + d then false
    else if hd placed = q - d then false
    else safe? q (d + 1) (tl placed)
and place = lambda n. lambda k.
    if k = 0 then [[]]
    else concatMap
        (lambda placed.
            map (lambda q. q :: placed)
                (filter (lambda q. safe? q 1 placed) (fromTo 1 n)))
        (place n (k - 1))
and concatMap = lambda f. lambda xs.
    if null? xs then [] else append (f (hd xs)) (concatMap f (tl xs))
in length (place 6 6)
"""


class TestNQueens:
    def test_solution_count(self):
        # 6-queens has 4 solutions.
        assert strict.evaluate(with_prelude(NQUEENS)) == 4

    def test_all_paths_agree(self):
        program = with_prelude(NQUEENS)
        expected = strict.evaluate(program)
        assert compile_program(program).evaluate() == expected
        assert generate_program(program).evaluate() == expected

    def test_profiled_run(self):
        program = profile_functions(with_prelude(NQUEENS), "place", "safe?")
        result = run_monitored(strict, program, ProfilerMonitor())
        assert result.answer == 4
        assert result.report()["place"] == 7  # place 6..0


# A meta-circular touch: an interpreter for a tiny arithmetic language,
# written in L_lambda, running object programs encoded as nested lists.
# Encoding: a leaf number n is [0, n]; [1, l, r] is addition; [2, l, r]
# is multiplication.
META_INTERPRETER = """
letrec eval = lambda t.
    {eval}: if hd t = 0 then nth 1 t
    else if hd t = 1 then (eval (nth 1 t)) + (eval (nth 2 t))
    else (eval (nth 1 t)) * (eval (nth 2 t))
in eval [1, [2, [0, 3], [0, 4]], [0, 5]]
"""


class TestMetaInterpreter:
    def test_interprets(self):
        # (3 * 4) + 5
        assert strict.evaluate(with_prelude(META_INTERPRETER)) == 17

    def test_monitoring_the_interpreter(self):
        # Monitoring a program that is itself an interpreter: the profiler
        # counts object-level node visits.
        result = run_monitored(
            strict, with_prelude(META_INTERPRETER), ProfilerMonitor()
        )
        assert result.answer == 17
        assert result.report() == {"eval": 5}  # 5 nodes in the object tree

    def test_callgraph_of_interpreter(self):
        result = run_monitored(
            strict, with_prelude(META_INTERPRETER), CallGraphMonitor()
        )
        graph = result.report()
        assert graph.edges[("eval", "eval")] == 4


class TestCoverageWorkflow:
    def test_branch_coverage_over_workload(self):
        program = parse(
            """
            letrec classify = lambda n.
                if n < 0 then {neg}: 0
                else if n = 0 then {zero}: 1
                else {pos}: 2
            and run = lambda xs.
                if xs = [] then 0 else classify (hd xs) + run (tl xs)
            in run [3, 1, 4, 1, 5]
            """
        )
        monitor = CoverageMonitor()
        result = run_monitored(strict, program, monitor)
        report = monitor.report_against(result.state_of(monitor), program)
        assert report.covered == frozenset({"pos"})
        assert report.uncovered == frozenset({"neg", "zero"})
        assert report.hits == {"pos": 5}


class TestStringWorkload:
    def test_string_building(self):
        program = parse(
            """
            letrec join = lambda xs.
                if xs = [] then ""
                else if tl xs = [] then hd xs
                else (hd xs) ++ ", " ++ join (tl xs)
            in join ["a", "b", "c"]
            """
        )
        assert strict.evaluate(program) == "a, b, c"
        assert generate_program(program).evaluate() == "a, b, c"
