"""Tests for dynamic breakpoints and extended debugger commands."""

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import DebuggerMonitor
from repro.syntax.parser import parse

PROGRAM = parse(
    """
    letrec outer = lambda n. {outer}: inner n
    and inner = lambda n. {inner}: if n = 0 then 0 else outer (n - 1)
    in outer 2
    """
)


def transcript(script, breakpoints):
    debugger = DebuggerMonitor(script, breakpoints=breakpoints)
    result = run_monitored(strict, PROGRAM, debugger)
    assert result.answer == 0
    return result.report()


class TestDynamicBreakpoints:
    def test_add_breakpoint_mid_session(self):
        text = transcript(
            ["break inner", "continue", "where", "quit"], breakpoints=["outer"]
        )
        # First stop at outer; after adding inner, the next stop is inner.
        assert "stopped at outer (stop #1)" in text
        assert "breakpoint added: inner" in text
        assert "stopped at inner (stop #2)" in text

    def test_delete_breakpoint(self):
        text = transcript(
            ["delete outer", "continue", "where", "quit"], breakpoints=["outer", "inner"]
        )
        # outer removed at the first stop; all later stops are at inner.
        stops = [line for line in text.splitlines() if line.startswith("stopped at")]
        assert stops[0] == "stopped at outer (stop #1)"
        assert all("inner" in stop for stop in stops[1:])
        assert len(stops) >= 2

    def test_breakpoints_listing(self):
        text = transcript(
            ["break inner", "breakpoints", "quit"], breakpoints=["outer"]
        )
        assert "breakpoints: inner, outer" in text

    def test_breakpoints_listing_all_sites(self):
        text = transcript(["breakpoints", "quit"], breakpoints=None)
        assert "(every annotated site)" in text

    def test_depth_command(self):
        text = transcript(
            ["continue", "continue", "depth", "quit"], breakpoints=["outer"]
        )
        # Third stop at outer: stack is outer > inner > outer.
        assert "depth: 3" in text

    def test_delete_overrides_static_set(self):
        text = transcript(["delete inner", "quit"], breakpoints=["inner"])
        assert text.count("stopped at") == 1  # only the initial stop
