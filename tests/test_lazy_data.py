"""Tests for the lazy-constructors language variant (infinite data)."""

import pytest

from repro.errors import PrimitiveError
from repro.languages import lazy_data, strict
from repro.monitoring.derive import run_monitored
from repro.monitors import LabelCounterMonitor
from repro.syntax.parser import parse


def run(source, **kwargs):
    return lazy_data.evaluate(parse(source), **kwargs)


class TestFiniteAgreement:
    def test_corpus(self, corpus_case):
        program, expected = corpus_case
        try:
            assert lazy_data.evaluate(program) == expected
        except PrimitiveError:
            # Corpus entries relying on strict list structure (structural
            # equality, length over lazily built spines) legitimately
            # reject under lazy constructors.
            pass


class TestInfiniteStructures:
    ONES = (
        "letrec onesf = lambda u. 1 :: onesf u in "
        "let ones = onesf 0 in "
    )

    def test_head_of_infinite_list(self):
        assert run(self.ONES + "hd ones") == 1

    def test_deep_index_into_infinite_list(self):
        source = (
            "letrec nats = lambda n. n :: nats (n + 1) "
            "and nth = lambda k. lambda l. "
            "  if k = 0 then hd l else nth (k - 1) (tl l) "
            "in nth 100 (nats 0)"
        )
        assert run(source) == 100

    def test_take_from_infinite_list(self):
        source = (
            "letrec nats = lambda n. n :: nats (n + 1) "
            "and take = lambda k. lambda l. "
            "  if k = 0 then [] else (hd l) :: (take (k - 1) (tl l)) "
            "and total = lambda l. if l = [] then 0 else (hd l) + total (tl l) "
            "in total (take 5 (nats 1))"
        )
        assert run(source) == 15

    def test_strict_language_diverges_on_same_program(self):
        from repro.errors import StepLimitExceeded

        source = self.ONES + "hd ones"
        with pytest.raises(StepLimitExceeded):
            strict.evaluate(parse(source), max_steps=200_000)

    def test_sieve_of_eratosthenes(self):
        source = """
        letrec nats = lambda n. n :: nats (n + 1)
        and filter = lambda p. lambda l.
            if p (hd l) then (hd l) :: (filter p (tl l)) else filter p (tl l)
        and sieve = lambda l.
            (hd l) :: (sieve (filter (lambda x. (x % (hd l)) /= 0) (tl l)))
        and nth = lambda k. lambda l.
            if k = 0 then hd l else nth (k - 1) (tl l)
        in nth 10 (sieve (nats 2))
        """
        assert run(source) == 31  # the 11th prime


class TestDemandMonitoring:
    def test_only_demanded_cells_monitored(self):
        source = (
            "letrec countup = lambda n. ({cell}: n) :: countup (n + 1) "
            "and nth = lambda k. lambda l. "
            "  if k = 0 then hd l else nth (k - 1) (tl l) "
            "in nth 3 (countup 0)"
        )
        result = run_monitored(lazy_data, parse(source), LabelCounterMonitor())
        assert result.answer == 3
        # Only the demanded head cell's annotation fires — the spine is
        # forced 4 times but heads 0..2 are never needed.
        assert result.report() == {"cell": 1}


class TestEqualityGuard:
    def test_unforced_comparison_rejected(self):
        source = (
            "letrec nats = lambda n. n :: nats (n + 1) "
            "in (1 :: (tl (nats 1))) = (1 :: (tl (nats 1)))"
        )
        with pytest.raises(PrimitiveError):
            run(source)

    def test_aggregation_instead_of_comparison(self):
        # The supported way to consume a lazy list: fold it down to a
        # basic value (which forces exactly what the fold demands).
        source = (
            "letrec take = lambda k. lambda l. "
            "  if k = 0 then [] else (hd l) :: (take (k - 1) (tl l)) "
            "and nats = lambda n. n :: nats (n + 1) "
            "and total = lambda l. if null? l then 0 else (hd l) + total (tl l) "
            "in total (take 3 (nats 0))"
        )
        assert run(source) == 3
