"""Property tests tying the static analyzer to the dynamic semantics.

Two guarantees, over randomly generated programs:

* **scope soundness** — a program the analyzer calls clean (no ``REP101``)
  never raises an unbound-identifier error at runtime, on either engine;
  and a program with an injected free variable is always flagged.
* **disjointness fidelity** — the pure :func:`disjoint_verdict` agrees
  exactly (including the message) with the legacy raising
  :func:`check_disjoint`, and with the cache-memoized form, over random
  (program, stack) pairs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze
from repro.errors import EvalError, MonitorError
from repro.languages import strict
from repro.monitoring.derive import check_disjoint, disjoint_verdict
from repro.runtime import CompilationCache
from repro.syntax.ast import App, Lam, Var
from repro.toolbox.registry import make_tool

from tests.generators import closed_program

MAX_STEPS = 2_000_000


def _unbound_codes(program):
    return [d.code for d in analyze(program).diagnostics if d.code == "REP101"]


@settings(max_examples=80, deadline=None)
@given(closed_program())
def test_clean_programs_never_raise_unbound(program):
    assert _unbound_codes(program) == []
    for engine in ("reference", "compiled"):
        try:
            strict.evaluate(program, max_steps=MAX_STEPS, engine=engine)
        except EvalError as exc:
            assert "unbound" not in str(exc).lower(), (
                f"analyzer-clean program raised an unbound error on {engine}"
            )


@settings(max_examples=60, deadline=None)
@given(closed_program(), st.sampled_from(["zz_free", "qq_free", "phantom"]))
def test_injected_free_variable_is_flagged(program, name):
    # Wrap the program so its value flows through an application whose
    # operator mentions an identifier bound nowhere.
    poisoned = App(Lam("it", App(App(Var("+"), Var("it")), Var(name))), program)
    codes = _unbound_codes(poisoned)
    assert codes == ["REP101"]


_STACKS = st.sampled_from(
    [
        (),
        ("profile",),
        ("count",),
        ("profile", "count"),
        ("profile", "trace"),
        ("count", "count"),
        ("trace", "collect", "profile"),
    ]
)


@settings(max_examples=60, deadline=None)
@given(closed_program(), _STACKS)
def test_disjoint_verdict_matches_legacy_check(program, names):
    monitors = [make_tool(name) for name in names]
    verdict = disjoint_verdict(monitors, program)
    if verdict is None:
        check_disjoint(monitors, program)  # must not raise
    else:
        try:
            check_disjoint(monitors, program)
        except MonitorError as exc:
            assert str(exc) == verdict
        else:
            raise AssertionError("verdict says reject, legacy check passed")


@settings(max_examples=40, deadline=None)
@given(closed_program(), _STACKS)
def test_cached_verdict_matches_legacy_check(program, names):
    monitors = [make_tool(name) for name in names]
    cache = CompilationCache()
    verdict = disjoint_verdict(monitors, program)
    for _ in range(2):  # cold then warm: memoized replay must agree
        if verdict is None:
            cache.check_disjoint(monitors, program)
        else:
            try:
                cache.check_disjoint(monitors, program)
            except MonitorError as exc:
                assert str(exc) == verdict
            else:
                raise AssertionError("memoized verdict lost the rejection")
