"""Cross-cutting property tests (hypothesis).

These strengthen the per-module suites with whole-pipeline invariants:

* parse/pretty round-trips on generated programs;
* all four execution paths (tree interpreter, literal denotational
  semantics, closure-compiled program, residual Python program) agree on
  answers;
* the monitored paths additionally agree on final monitor states;
* the nested-pair cascade answer (Section 6) is well-shaped;
* composition order never changes answers.
"""

from hypothesis import given, settings

from repro.languages import strict
from repro.monitoring.compose import nested_answer
from repro.monitoring.derive import run_monitored
from repro.monitors import LabelCounterMonitor, TracerMonitor
from repro.partial_eval.codegen import generate_program
from repro.partial_eval.compile import compile_program
from repro.semantics.denotational import run_denotational
from repro.syntax.parser import parse
from repro.syntax.pretty import pretty

from tests.generators import closed_program

MAX_STEPS = 2_000_000


@settings(max_examples=100, deadline=None)
@given(closed_program())
def test_parse_pretty_roundtrip(program):
    assert parse(pretty(program)) == program


@settings(max_examples=80, deadline=None)
@given(closed_program())
def test_all_execution_paths_agree(program):
    interpreter_answer = strict.evaluate(program, max_steps=MAX_STEPS)
    # The literal denotational semantics recurses on the host stack for the
    # *entire* CPS computation; CPython 3.11 heap-allocates Python frames,
    # so a large limit is safe for generated (exponential) programs.
    denotational_answer, _ = run_denotational(program, recursion_limit=800_000)
    compiled_answer = compile_program(program).evaluate(max_steps=MAX_STEPS)
    residual_answer = generate_program(program).evaluate()
    assert interpreter_answer == denotational_answer
    assert interpreter_answer == compiled_answer
    assert interpreter_answer == residual_answer


@settings(max_examples=60, deadline=None)
@given(closed_program())
def test_monitored_paths_agree_on_states(program):
    monitor = LabelCounterMonitor()
    interp = run_monitored(strict, program, LabelCounterMonitor(), max_steps=MAX_STEPS)
    compiled = compile_program(program, LabelCounterMonitor())
    generated = generate_program(program, LabelCounterMonitor())
    _, compiled_states = compiled.run(max_steps=MAX_STEPS)
    _, generated_states = generated.run()
    assert compiled_states.get(monitor.key) == interp.state_of(monitor.key)
    assert generated_states.get(monitor.key) == interp.state_of(monitor.key)


@settings(max_examples=60, deadline=None)
@given(closed_program())
def test_denotational_monitored_agrees(program):
    monitor = LabelCounterMonitor()
    den_answer, den_state = run_denotational(program, monitor, recursion_limit=800_000)
    machine = run_monitored(strict, program, LabelCounterMonitor(), max_steps=MAX_STEPS)
    assert den_answer == machine.answer
    assert den_state == machine.state_of(monitor.key)


@settings(max_examples=60, deadline=None)
@given(closed_program())
def test_composition_order_irrelevant_for_answers(program):
    forward = run_monitored(
        strict,
        program,
        [LabelCounterMonitor(), TracerMonitor()],
        max_steps=MAX_STEPS,
    )
    backward = run_monitored(
        strict,
        program,
        [TracerMonitor(), LabelCounterMonitor()],
        max_steps=MAX_STEPS,
    )
    assert forward.answer == backward.answer
    assert forward.report("count") == backward.report("count")
    assert forward.report("trace") == backward.report("trace")


@settings(max_examples=40, deadline=None)
@given(closed_program())
def test_nested_answer_shape(program):
    result = run_monitored(
        strict,
        program,
        [LabelCounterMonitor(), TracerMonitor()],
        max_steps=MAX_STEPS,
    )
    nested = nested_answer(result)
    # ((answer x MS_count) x MS_trace) — Section 6's answer domain.
    assert isinstance(nested, tuple) and len(nested) == 2
    inner, trace_state = nested
    assert isinstance(inner, tuple) and len(inner) == 2
    assert inner[0] == result.answer
    assert inner[1] == result.state_of("count")
    assert trace_state == result.state_of("trace")


@settings(max_examples=40, deadline=None)
@given(closed_program())
def test_annotation_erasure_equals_oblivious_run(program):
    """Definition 7.1: running s_bar standardly equals running s."""
    from repro.syntax.ast import strip_annotations

    annotated_run = strict.evaluate(program, max_steps=MAX_STEPS)
    erased_run = strict.evaluate(strip_annotations(program), max_steps=MAX_STEPS)
    assert annotated_run == erased_run
