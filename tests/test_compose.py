"""Tests for monitor composition (Section 6)."""

import pytest

from repro.errors import MonitorError
from repro.languages import strict
from repro.monitoring.compose import (
    MonitorStack,
    compose,
    flatten_monitors,
    validate_observations,
)
from repro.monitoring.derive import run_monitored
from repro.monitoring.spec import FunctionSpec, MonitorSpec
from repro.monitors import ProfilerMonitor, TracerMonitor
from repro.syntax.annotations import Label, Tagged
from repro.syntax.parser import parse


def spec(key, names=None):
    def recognize(annotation):
        if isinstance(annotation, Label) and (names is None or annotation.name in names):
            return annotation
        return None

    return FunctionSpec(
        key=key,
        recognize=recognize,
        initial=lambda: 0,
        pre=lambda ann, term, ctx, st: st + 1,
    )


class TestStackAlgebra:
    def test_and_operator_builds_stack(self):
        stack = spec("a", {"p"}) & spec("b", {"q"})
        assert isinstance(stack, MonitorStack)
        assert [m.key for m in stack] == ["a", "b"]

    def test_and_is_associative(self):
        a, b, c = spec("a", {"p"}), spec("b", {"q"}), spec("c", {"r"})
        left = (a & b) & c
        right = a & (b & c)
        assert [m.key for m in left] == [m.key for m in right]

    def test_compose_function(self):
        stack = compose(spec("a", {"p"}), spec("b", {"q"}), spec("c", {"r"}))
        assert len(stack) == 3

    def test_flatten_single_spec(self):
        single = spec("a")
        assert flatten_monitors(single) == [single]

    def test_flatten_nested_sequences(self):
        a, b, c = spec("a"), spec("b"), spec("c")
        assert [m.key for m in flatten_monitors([a, [b, c]])] == ["a", "b", "c"]

    def test_duplicate_keys_rejected(self):
        with pytest.raises(MonitorError):
            compose(spec("same", {"p"}), spec("same", {"q"}))

    def test_repr(self):
        assert "a & b" in repr(spec("a", {"p"}) & spec("b", {"q"}))


class TestCascadedExecution:
    def test_both_monitors_observe(self):
        program = parse("letrec f = lambda n. if n = 0 then 0 else {p}: ({q}: f (n - 1)) in f 3")
        result = run_monitored(strict, program, spec("a", {"p"}) & spec("b", {"q"}))
        assert result.report("a") == 3
        assert result.report("b") == 3

    def test_order_does_not_change_answer(self):
        program = parse("{p}: ({q}: (6 * 7))")
        forward = run_monitored(strict, program, spec("a", {"p"}) & spec("b", {"q"}))
        backward = run_monitored(strict, program, spec("b", {"q"}) & spec("a", {"p"}))
        assert forward.answer == backward.answer == 42

    def test_paper_monitors_compose(self, paper_tracer_program):
        # Tracer recognizes FnHeaders, profiler recognizes Labels: already
        # disjoint, so the paper's programs can carry both annotation kinds.
        program = parse(
            """
            letrec mul = lambda x. lambda y. {mul(x, y)}: {mul}: (x*y) in
            letrec fac = lambda x. {fac(x)}: {fac}: if (x=0) then 1 else mul x (fac (x-1))
            in fac 3
            """
        )
        stack = ProfilerMonitor() & TracerMonitor()
        result = run_monitored(strict, program, stack)
        assert result.answer == 6
        assert result.report("profile") == {"fac": 4, "mul": 3}
        assert "[FAC receives (3)]" in result.report("trace")


class TestObservation:
    def make_observer(self, observed_key):
        class Observer(MonitorSpec):
            key = "observer"
            observes = (observed_key,)

            def recognize(self, annotation):
                if isinstance(annotation, Tagged) and annotation.tool == "watch":
                    return annotation.payload
                return None

            def initial_state(self):
                return ()

            def pre(self, annotation, term, ctx, state, inner=None):
                return state + (inner[observed_key],)

        return Observer()

    def test_observer_sees_earlier_state(self):
        program = parse("{watch: w}: {p}: 1")
        stack = spec("a", {"p"}) & self.make_observer("a")
        result = run_monitored(strict, program, stack)
        # Observation happens before the inner {p} fires.
        assert result.report("observer") == (0,)

    def test_observer_after_inner_hits(self):
        program = parse("({p}: 1) + ({watch: w}: 2)")
        stack = spec("a", {"p"}) & self.make_observer("a")
        result = run_monitored(strict, program, stack)
        # Figure 2 order: the right operand of + evaluates first, so the
        # observer fires before {p} does.
        assert result.report("observer") == (0,)

    def test_observer_sees_counts_accumulate(self):
        program = parse(
            "letrec f = lambda n. if n = 0 then 0 else {watch: w}: ({p}: f (n - 1)) in f 2"
        )
        stack = spec("a", {"p"}) & self.make_observer("a")
        result = run_monitored(strict, program, stack)
        assert result.report("observer") == (0, 1)

    def test_forward_observation_rejected(self):
        observer = self.make_observer("later")
        later = spec("later", {"p"})
        with pytest.raises(MonitorError):
            validate_observations([observer, later])

    def test_backward_observation_accepted(self):
        observer = self.make_observer("a")
        validate_observations([spec("a"), observer])
