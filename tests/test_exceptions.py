"""Tests for the ``L_exc`` exceptions language module."""

import pytest

from repro.languages.exceptions import (
    ExcParser,
    Raise,
    TryCatch,
    UncaughtException,
    exceptions_language,
    parse_exc,
)
from repro.monitoring.derive import run_monitored
from repro.monitoring.spec import FunctionSpec
from repro.monitors import StepperMonitor, TracerMonitor
from repro.syntax.annotations import Label
from repro.syntax.parser import parse as parse_lambda


def run(source, **kwargs):
    return exceptions_language.evaluate(parse_exc(source), **kwargs)


class TestParser:
    def test_raise(self):
        expr = parse_exc("raise 1")
        assert isinstance(expr, Raise)

    def test_try_catch(self):
        expr = parse_exc("try raise 1 catch e. e + 1")
        assert isinstance(expr, TryCatch)
        assert expr.param == "e"

    def test_contextual_keywords(self):
        # `raise` is an ordinary identifier to the base L_lambda parser.
        expr = parse_lambda("lambda raise. raise")
        assert expr.param == "raise"

    def test_missing_catch(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_exc("try 1 1")


class TestSemantics:
    def test_plain_programs_unchanged(self, corpus_case):
        program, expected = corpus_case
        assert exceptions_language.evaluate(program) == expected

    def test_no_raise_no_handler(self):
        assert run("try 1 + 1 catch e. 99") == 2

    def test_raise_caught(self):
        assert run("try raise 41 catch e. e + 1") == 42

    def test_raise_aborts_pending_work(self):
        # The multiplication never happens.
        assert run("try 100 * (raise 7) catch e. e") == 7

    def test_uncaught_raise(self):
        with pytest.raises(UncaughtException) as exc:
            run("1 + raise 13")
        assert exc.value.value == 13

    def test_nested_handlers_innermost_wins(self):
        assert run("try (try raise 1 catch a. a + 10) catch b. b + 100") == 11

    def test_raise_in_handler_propagates_outward(self):
        assert run("try (try raise 1 catch a. raise (a + 1)) catch b. b * 10") == 20

    def test_handler_is_dynamic(self):
        # A function defined outside the try raises into the *caller's*
        # handler.
        source = (
            "let thrower = lambda x. raise x in "
            "try thrower 5 catch e. e * 2"
        )
        assert run(source) == 10

    def test_raise_through_deep_recursion(self):
        source = (
            "letrec dig = lambda n. if n = 0 then raise n else 1 + dig (n - 1) in "
            "try dig 10000 catch e. e - 1"
        )
        assert run(source) == -1

    def test_raise_value_can_be_any_value(self):
        assert run("try raise [1, 2] catch e. hd e") == 1

    def test_condition_raise(self):
        assert run("try (if raise true then 1 else 2) catch e. if e then 3 else 4") == 3


class TestRandomExcPrograms:
    from hypothesis import given, settings

    from tests.generators import exc_program

    @settings(max_examples=80, deadline=None)
    @given(exc_program())
    def test_monitoring_soundness_under_exceptions(self, program):
        from repro.monitors import LabelCounterMonitor

        plain = exceptions_language.evaluate(program, max_steps=2_000_000)
        monitored = run_monitored(
            exceptions_language, program, LabelCounterMonitor(), max_steps=2_000_000
        )
        assert monitored.answer == plain

    @settings(max_examples=80, deadline=None)
    @given(exc_program())
    def test_residual_exc_parity(self, program):
        from repro.monitors import LabelCounterMonitor
        from repro.partial_eval.exc_codegen import generate_exc_program

        interp = run_monitored(
            exceptions_language, program, LabelCounterMonitor(), max_steps=2_000_000
        )
        generated = generate_exc_program(program, LabelCounterMonitor())
        answer, states = generated.run()
        assert answer == interp.answer
        assert states.get("count") == interp.state_of("count")


class TestMonitoredExceptions:
    def test_monitor_sound_under_exceptions(self):
        program = parse_exc("try {p}: (1 + raise 5) catch e. {q}: (e * 2)")
        counter = FunctionSpec(
            key="count",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: {},
            pre=lambda ann, term, ctx, st: {**st, ann.name: st.get(ann.name, 0) + 1},
        )
        result = run_monitored(exceptions_language, program, counter)
        assert result.answer == 10
        # {p} was entered; {q} ran in the handler.
        assert result.report() == {"p": 1, "q": 1}

    def test_post_discarded_on_abort(self):
        # The continuation carrying updPost is discarded by the raise:
        # the stepper records an enter with no matching exit.
        program = parse_exc("try {p}: (raise 1) catch e. e")
        result = run_monitored(exceptions_language, program, StepperMonitor())
        monitor = result.monitors[0]
        events = monitor.events(result.state_of(monitor))
        kinds = [e.kind for e in events]
        assert kinds == ["enter"]  # no exit: the abort is visible

    def test_tracer_shows_unreturned_call(self):
        program = parse_exc(
            "letrec f = lambda x. {f(x)}: (if x = 0 then raise 99 else f (x - 1)) in "
            "try f 2 catch e. e"
        )
        result = run_monitored(exceptions_language, program, TracerMonitor())
        assert result.answer == 99
        trace = result.report()
        assert trace.count("receives") == 3
        assert trace.count("returns") == 0  # every activation was aborted

    def test_monitor_state_survives_abort(self):
        # State updates made before the raise are kept: the monitor state
        # threads *through* the machine, it is not part of the discarded
        # continuation's value world.
        program = parse_exc(
            "try ({a}: 1) + ({b}: (raise 2)) catch e. e"
        )
        counter = FunctionSpec(
            key="count",
            recognize=lambda a: a if isinstance(a, Label) else None,
            initial=lambda: {},
            pre=lambda ann, term, ctx, st: {**st, ann.name: st.get(ann.name, 0) + 1},
        )
        result = run_monitored(exceptions_language, program, counter)
        assert result.answer == 2
        # Figure 2 order: the right operand {b} runs (and raises) before
        # {a} is ever reached.
        assert result.report() == {"b": 1}
