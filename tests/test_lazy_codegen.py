"""Tests for lazy residual code generation."""

import pytest

from repro.languages import lazy
from repro.monitoring.derive import run_monitored
from repro.monitors import LabelCounterMonitor, ProfilerMonitor
from repro.partial_eval.lazy_codegen import generate_lazy_program
from repro.syntax.parser import parse


class TestAnswers:
    def test_corpus_parity(self, corpus_case):
        program, expected = corpus_case
        generated = generate_lazy_program(program)
        assert generated.evaluate() == expected

    def test_unused_divergence_ignored(self):
        program = parse(
            "letrec loop = lambda x. loop x in let dead = loop 1 in 42"
        )
        assert generate_lazy_program(program).evaluate() == 42

    def test_unused_error_ignored(self):
        program = parse("(lambda x. 7) (hd [])")
        assert generate_lazy_program(program).evaluate() == 7

    def test_demanded_error_raises(self):
        from repro.errors import EvalError

        program = parse("(lambda x. x) (hd [])")
        with pytest.raises(EvalError):
            generate_lazy_program(program).evaluate()


class TestDemandMonitoring:
    def test_never_demanded_no_events(self):
        program = parse("let dead = {dead}: (1 + 1) in 5")
        generated = generate_lazy_program(program, LabelCounterMonitor())
        interp = run_monitored(lazy, program, LabelCounterMonitor())
        assert generated.report("count") == interp.report() == {}

    def test_shared_thunk_single_event(self):
        program = parse("let x = {costly}: (1 + 2) in x + x")
        generated = generate_lazy_program(program, LabelCounterMonitor())
        interp = run_monitored(lazy, program, LabelCounterMonitor())
        assert generated.report("count") == interp.report() == {"costly": 1}

    def test_sharing_through_aliases(self):
        program = parse(
            "let x = {costly}: (2 * 2) in let y = x in let z = y in z + y + x"
        )
        generated = generate_lazy_program(program, LabelCounterMonitor())
        answer, states = generated.run()
        assert answer == 12
        assert states.get("count") == {"costly": 1}

    def test_demand_order_matches_interpreter(self):
        events = []
        from repro.monitoring.spec import FunctionSpec
        from repro.syntax.annotations import Label

        def make_spy():
            return FunctionSpec(
                key="spy",
                recognize=lambda a: a if isinstance(a, Label) else None,
                initial=lambda: None,
                pre=lambda ann, term, ctx, st: (events.append(ann.name), st)[1],
            )

        program = parse("(lambda x. {body}: 1 + x) ({arg}: 2)")
        run_monitored(lazy, program, make_spy())
        interp_events, events = list(events), []
        generate_lazy_program(program, make_spy()).run()
        assert events == interp_events == ["body", "arg"]

    def test_profiled_recursion_parity(self):
        program = parse(
            "letrec fib = lambda n. {fib}: (if n < 2 then n else fib (n - 1) + fib (n - 2)) in fib 10"
        )
        generated = generate_lazy_program(program, ProfilerMonitor())
        interp = run_monitored(lazy, program, ProfilerMonitor())
        answer, states = generated.run()
        assert answer == interp.answer == 55
        assert states.get("profile") == interp.state_of("profile")


class TestSource:
    def test_thunks_in_source(self):
        program = parse("(lambda x. 1) (2 + 3)")
        generated = generate_lazy_program(program)
        assert "_T(" in generated.source

    def test_source_is_python(self):
        program = parse("let x = {p}: (1 + 1) in x")
        generated = generate_lazy_program(program, LabelCounterMonitor())
        compile(generated.source, "<check>", "exec")
