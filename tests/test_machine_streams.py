"""Direct unit tests for the generic machine and the stream algebra."""

import pytest

from repro.languages import strict
from repro.monitors.streams import Stream, init_stream
from repro.semantics.answers import (
    BASIC_ANSWERS,
    STANDARD_ANSWERS,
    AnswerAlgebra,
    monitoring_answers,
    string_answers,
)
from repro.semantics.machine import final_kont, fix, run_machine
from repro.semantics.trampoline import Done, trampoline
from repro.syntax.parser import parse


class TestFix:
    def test_knot_sees_final_definition(self):
        """The recur handle must re-enter the *derived* semantics."""
        calls = []

        def base(recur):
            def step(n):
                calls.append(("base", n))
                if n == 0:
                    return Done("done")
                return recur(n - 1)

            return step

        def derived(recur):
            base_step = base(recur)

            def step(n):
                calls.append(("derived", n))
                return base_step(n)

            return step

        run = fix(derived)
        assert trampoline(run(2)) == "done"
        # Every level went through the derived layer, not just the first.
        assert calls.count(("derived", 2)) == 1
        assert calls.count(("derived", 1)) == 1
        assert calls.count(("derived", 0)) == 1

    def test_fix_of_standard_evaluates(self):
        from repro.semantics.machine import run_machine

        answer, ms = run_machine(strict, parse("2 + 2"))
        assert answer == 4
        assert ms is None


class TestRunMachine:
    def test_custom_functional(self):
        # A "semantics" that doubles every constant, showing the machine
        # is agnostic to what functional it runs.
        from repro.semantics.standard import standard_functional
        from repro.semantics.trampoline import Bounce
        from repro.syntax.ast import Const

        def doubling(recur):
            base = standard_functional(recur)

            def eval_(expr, env, kont, ms):
                if type(expr) is Const and isinstance(expr.value, int):
                    return Bounce(kont, (expr.value * 2, ms))
                return base(expr, env, kont, ms)

            return eval_

        answer, _ = run_machine(strict, parse("3 + 4"), functional=doubling)
        assert answer == 14

    def test_answers_parameter(self):
        answer, _ = run_machine(strict, parse("3 * 3"), answers=string_answers())
        assert answer == "The result is: 9"

    def test_final_kont_applies_phi(self):
        kont = final_kont(AnswerAlgebra("neg", lambda v: -v))
        step = kont(5, "sigma")
        assert isinstance(step, Done)
        assert step.payload == (-5, "sigma")


class TestAnswerAlgebras:
    def test_monitoring_answers_wraps(self):
        lifted = monitoring_answers(STANDARD_ANSWERS)
        computation = lifted.phi(42)
        assert computation("sigma") == (42, "sigma")
        assert "monitoring" in lifted.name

    def test_basic_answers_projection(self):
        assert BASIC_ANSWERS.phi(7) == 7

    def test_repr(self):
        assert "standard" in repr(STANDARD_ANSWERS)


class TestStream:
    def test_empty(self):
        stream = init_stream()
        assert len(stream) == 0
        assert stream.render() == ""
        assert stream.lines() == []

    def test_add_is_persistent(self):
        base = init_stream().add("a")
        extended = base.add("b")
        assert base.render() == "a"
        assert extended.render() == "ab"

    def test_chunks_in_order(self):
        stream = init_stream().add("1").add("2").add("3")
        assert stream.chunks() == ["1", "2", "3"]
        assert list(stream) == ["1", "2", "3"]

    def test_lines(self):
        stream = init_stream().add("a\n").add("b\n")
        assert stream.lines() == ["a", "b"]

    def test_shared_structure(self):
        # 1000 appends are O(n) total, not O(n^2): structure is shared.
        stream = init_stream()
        for index in range(1000):
            stream = stream.add(str(index))
        assert len(stream) == 1000
        assert stream.chunks()[0] == "0"

    def test_repr(self):
        assert "2 chunks" in repr(init_stream().add("a").add("b"))
