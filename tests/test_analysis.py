"""Unit tests for the static analyzer (:mod:`repro.analysis`).

Covers the diagnostic model and its renderers, the scope/binding pass,
the annotation/stack pass, the monitor-spec pass (arity and purity), and
the ``analyze`` entry point on the acceptance-criteria program.  The
hook functions used by the purity tests live at module level: the scan
reads their source with ``inspect.getsource``, which cannot see inside
test-local closures defined interactively.
"""

import json

import pytest

from repro.analysis import (
    AnalysisReport,
    Diagnostic,
    StaticAnalysisError,
    analyze,
    analyze_scope,
    analyze_spec,
    analyze_stack,
    check_lint_level,
    claim_sets,
    free_vars,
    probe_monitor,
    render_json,
    render_text,
)
from repro.errors import MonitorError
from repro.monitoring.spec import FunctionSpec
from repro.monitors import LabelCounterMonitor, ProfilerMonitor, TracerMonitor
from repro.syntax.annotations import Label
from repro.syntax.parser import parse
from repro.toolbox.registry import TOOLBOX, make_tool


def _scope(source, language=None):
    from repro.analysis import _global_names

    return analyze_scope(parse(source), _global_names(language))


def _codes(diagnostics):
    return [d.code for d in diagnostics]


# -- the diagnostic model -----------------------------------------------------


class TestDiagnosticModel:
    def test_lint_levels(self):
        for level in ("off", "warn", "error"):
            check_lint_level(level)
        with pytest.raises(Exception):
            check_lint_level("loud")

    def test_to_dict_from_dict_roundtrip(self):
        report = analyze("let x = 1 in x + y", [ProfilerMonitor()])
        assert not report.ok()
        for diagnostic in report.diagnostics:
            clone = Diagnostic.from_dict(diagnostic.to_dict())
            assert clone.code == diagnostic.code
            assert clone.severity == diagnostic.severity
            assert clone.message == diagnostic.message
            assert clone.location.line == diagnostic.location.line
            assert clone.location.column == diagnostic.location.column
            assert clone.span == diagnostic.span

    def test_sort_key_orders_located_first(self):
        located = Diagnostic(
            code="REP101",
            severity="error",
            message="x",
            location=parse("f").location,
        )
        unlocated = Diagnostic(code="REP205", severity="error", message="y", subject="k")
        assert sorted([unlocated, located], key=Diagnostic.sort_key)[0] is located

    def test_render_includes_caret_and_hint(self):
        source = "1 + nope"
        report = analyze(source)
        rendered = report.render()
        assert "error[REP101]" in rendered
        assert "1:5" in rendered
        assert "^^^^" in rendered  # span covers the identifier
        assert "help:" in rendered

    def test_render_text_clean(self):
        report = analyze("1 + 2")
        assert report.ok()
        assert "no issues found" in render_text(report)

    def test_render_json_roundtrips(self):
        report = analyze("1 + nope", [ProfilerMonitor()])
        data = json.loads(render_json(report))
        assert data["ok"] is False
        assert data["errors"] == 1
        assert [d["code"] for d in data["diagnostics"]] == ["REP101"]
        assert data["diagnostics"][0]["line"] == 1
        assert data["diagnostics"][0]["column"] == 5

    def test_summary_counts(self):
        report = analyze(
            "letrec unused = lambda x. x in 1 + nope", [ProfilerMonitor()]
        )
        assert report.summary() == "1 error(s), 1 warning(s)"

    def test_static_analysis_error_carries_report(self):
        report = analyze("1 + nope")
        exc = StaticAnalysisError(report)
        assert exc.report is report
        assert _codes(exc.diagnostics) == ["REP101"]
        assert "REP101" in str(exc)


# -- the scope/binding pass ---------------------------------------------------


class TestScopePass:
    def test_free_vars(self):
        assert free_vars(parse("lambda x. x + y")) == frozenset({"+", "y"})
        assert free_vars(parse("letrec f = lambda n. f n in f 1")) == frozenset()

    def test_unbound_identifier(self):
        (finding,) = _scope("let x = 1 in x + missing")
        assert finding.code == "REP101"
        assert finding.location.line == 1
        assert finding.location.column == 18
        assert finding.span == len("missing")

    def test_primitives_are_bound(self):
        assert _scope("max 1 (min 2 (length (cons 1 nil)))") == []

    def test_lambda_let_letrec_bind(self):
        assert _scope("lambda x. let y = x in letrec f = lambda n. f (y n) in f x") == []

    def test_duplicate_letrec_binding(self):
        findings = _scope("letrec f = lambda x. x and f = lambda y. y in f 1")
        assert "REP104" in _codes(findings)

    def test_letrec_shadowing_warns(self):
        findings = _scope("let f = 1 in letrec f = lambda x. x in f 2")
        assert _codes(findings) == ["REP102"]
        assert findings[0].severity == "warning"

    def test_unused_letrec_binding_warns(self):
        findings = _scope("letrec unused = lambda x. x in 42")
        assert _codes(findings) == ["REP103"]

    def test_mutually_recursive_bindings_are_used(self):
        source = (
            "letrec even = lambda n. if n = 0 then true else odd (n - 1) "
            "and odd = lambda n. if n = 0 then false else even (n - 1) "
            "in even 4"
        )
        assert _scope(source) == []

    def test_fnheader_params_not_in_scope(self):
        findings = _scope("letrec f = lambda x. {f(x, ghost)}: x in f 1")
        assert "REP201" in _codes(findings)

    def test_fnheader_params_in_scope_clean(self):
        assert _scope("letrec f = lambda x. {f(x)}: x in f 1") == []


# -- the annotation/stack pass ------------------------------------------------


class TestStackPass:
    def test_empty_stack_no_findings(self):
        assert analyze_stack(parse("{p}: 1"), []) == []

    def test_dead_annotation(self):
        (finding,) = analyze_stack(parse("{unclaimed_label_xyz}: 1"), [TracerMonitor()])
        assert finding.code == "REP202"
        assert finding.severity == "warning"
        assert finding.location.line == 1

    def test_unknown_tool(self):
        (finding,) = analyze_stack(parse("{mystery: p}: 1"), [ProfilerMonitor()])
        assert finding.code == "REP203"
        assert "mystery" in finding.message

    def test_overlap(self):
        (finding,) = analyze_stack(
            parse("{p}: 1"), [ProfilerMonitor(), LabelCounterMonitor()]
        )
        assert finding.code == "REP204"
        assert finding.severity == "error"
        assert finding.span == len("{p}")

    def test_namespaced_stack_is_disjoint(self):
        monitors = [make_tool("profile", namespace="profile"),
                    make_tool("count", namespace="count")]
        findings = analyze_stack(parse("{profile: p}: 1 + {count: q}: 2"), monitors)
        assert findings == []

    def test_duplicate_monitor_keys(self):
        findings = analyze_stack(parse("1"), [ProfilerMonitor(), ProfilerMonitor()])
        assert _codes(findings) == ["REP205"]
        assert findings[0].subject == ProfilerMonitor().key

    def test_claim_sets(self):
        program = parse("{p}: 1 + {q}: 2")
        claims = claim_sets(program, [ProfilerMonitor()])
        assert set(claims) == {ProfilerMonitor().key}
        assert [ann.name for ann in claims[ProfilerMonitor().key]] == ["p", "q"]


# -- the monitor-spec pass ----------------------------------------------------

# Hooks for the purity scan, at module level so inspect.getsource works.


def _impure_pre(annotation, term, ctx, state):
    state["hits"] = state.get("hits", 0) + 1  # in-place write to the param
    return state


def _global_pre(annotation, term, ctx, state):
    global _LEAKED
    _LEAKED = state
    return state


def _pure_pre(annotation, term, ctx, state):
    out = dict(state)
    out["hits"] = out.get("hits", 0) + 1
    return out


def _label(annotation):
    return annotation if isinstance(annotation, Label) else None


def _spec(pre):
    return FunctionSpec(key="t", recognize=_label, initial=dict, pre=pre)


class TestSpecPass:
    def test_arity_error_pre(self):
        bad = FunctionSpec(
            key="t", recognize=_label, initial=dict, pre=lambda a, b: b
        )
        findings = analyze_spec(bad)
        assert "REP301" in _codes(findings)

    def test_arity_error_recognize(self):
        bad = FunctionSpec(
            key="t", recognize=lambda: None, initial=dict
        )
        findings = analyze_spec(bad)
        assert "REP303" in _codes(findings)

    def test_arity_error_post(self):
        bad = FunctionSpec(
            key="t", recognize=_label, initial=dict, post=lambda a: a
        )
        findings = analyze_spec(bad)
        assert "REP302" in _codes(findings)

    def test_impure_param_write_flagged(self):
        findings = analyze_spec(_spec(_impure_pre))
        assert "REP304" in _codes(findings)
        assert all(f.severity == "warning" for f in findings)

    def test_global_write_flagged(self):
        findings = analyze_spec(_spec(_global_pre))
        assert "REP305" in _codes(findings)

    def test_copy_first_idiom_clean(self):
        assert analyze_spec(_spec(_pure_pre)) == []

    @pytest.mark.parametrize("name", sorted(TOOLBOX))
    def test_toolbox_monitors_statically_clean(self, name):
        assert analyze_spec(make_tool(name)) == []

    @pytest.mark.parametrize("name", sorted(TOOLBOX))
    def test_toolbox_monitors_pass_probes(self, name):
        assert probe_monitor(make_tool(name)) == []

    def test_probe_findings_become_diagnostics(self):
        shared = {}
        broken = FunctionSpec(
            key="broken",
            recognize=_label,
            initial=lambda: shared,  # shared mutable state: probe finding
            pre=lambda annotation, term, ctx, state: state,
        )
        findings = probe_monitor(broken)
        assert "REP312" in _codes(findings)
        assert all(f.code.startswith("REP31") for f in findings)
        assert all(f.subject.startswith("broken.") for f in findings)


# -- the analyze entry point --------------------------------------------------


class TestAnalyze:
    SOURCE = (
        "let x = {p}: 1 in\n"
        "let y = {unknown: q}: 2 in\n"
        "x + y + froz"
    )

    def test_acceptance_program_reports_three_codes(self):
        report = analyze(
            self.SOURCE, [make_tool("profile"), make_tool("count")]
        )
        assert report.codes() == ("REP204", "REP203", "REP101")
        by_code = {d.code: d for d in report.diagnostics}
        assert (by_code["REP204"].location.line, by_code["REP204"].location.column) == (1, 9)
        assert (by_code["REP203"].location.line, by_code["REP203"].location.column) == (2, 9)
        assert (by_code["REP101"].location.line, by_code["REP101"].location.column) == (3, 9)
        assert len(report.errors) == 2
        assert len(report.warnings) == 1

    def test_str_program_keeps_source_for_rendering(self):
        report = analyze(self.SOURCE, [make_tool("profile"), make_tool("count")])
        rendered = report.render()
        assert "x + y + froz" in rendered  # source excerpt shown
        assert "^^^^" in rendered

    def test_parsed_program_accepted(self):
        report = analyze(parse("1 + 2"), [ProfilerMonitor()])
        assert report.ok()

    def test_monitor_stack_flattened(self):
        from repro.monitoring.compose import compose

        stack = compose(make_tool("profile", namespace="profile"),
                        make_tool("trace", namespace="trace"))
        report = analyze("{profile: p}: 1", stack)
        assert report.ok()

    @pytest.mark.parametrize(
        "stack",
        ["profile", "profile & count", ["profile"], ["profile", "count"]],
        ids=["name", "ampersand", "list", "list-two"],
    )
    def test_toolbox_names_accepted(self, stack):
        # Regression: plain tool names used to recurse forever in
        # flatten_monitors (a str flattens into strs).
        report = analyze("1 + nope", stack)
        assert "REP101" in report.codes()

    def test_disjointness_mirror(self):
        # The analyzer's REP204 fires exactly when check_disjoint rejects.
        from repro.monitoring.derive import check_disjoint

        program = parse("{p}: 1")
        stack = [ProfilerMonitor(), LabelCounterMonitor()]
        with pytest.raises(MonitorError):
            check_disjoint(stack, program)
        assert "REP204" in analyze(program, stack).codes()
