"""Robustness fuzzing: the front end never crashes, only reports.

For arbitrary input text the lexer/parser must either produce a tree or
raise a located :class:`LexError`/:class:`ParseError` — never an
``AttributeError``/``IndexError``/``RecursionError`` escape.  And for
text that does parse, pretty-printing and re-parsing must be stable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LexError, ParseError
from repro.syntax.lexer import tokenize
from repro.syntax.parser import parse
from repro.syntax.pretty import pretty

#: Alphabet biased toward the language's own tokens so the fuzzer reaches
#: deep parser states, plus raw unicode noise.
TOKENS = [
    "lambda", "if", "then", "else", "let", "letrec", "in", "and",
    "true", "false", "x", "y", "fac", "f'",
    "0", "1", "42", "3.5",
    "+", "-", "*", "/", "=", "/=", "<", "<=", ">", ">=", "::", "++",
    "&&", "||",
    "(", ")", "[", "]", ",", ".", ":", "{", "}",
    '"str"', "{p}:", "{f(x)}:", "--c\n", "#c\n", " ", "\n",
]


@settings(max_examples=300, deadline=None)
@given(st.lists(st.sampled_from(TOKENS), max_size=25).map(" ".join))
def test_parser_total_on_token_soup(source):
    try:
        tree = parse(source)
    except (LexError, ParseError) as exc:
        assert exc.location is not None
        return
    # Parsed: round-trip must be stable.
    assert parse(pretty(tree)) == tree


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=40))
def test_lexer_total_on_arbitrary_text(source):
    try:
        tokens = tokenize(source)
    except LexError as exc:
        assert exc.location is not None
        return
    assert tokens[-1].kind == "EOF"


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet="(){}[]:.,+-*/=<>", max_size=30))
def test_parser_total_on_punctuation_noise(source):
    try:
        parse(source)
    except (LexError, ParseError):
        pass


IMP_TOKENS = [
    "skip", "emit", "while", "do", "begin", "end", "local", "in",
    "if", "then", "else", ":=", ";", "x", "y", "0", "1", "+", "<",
    "{p}:", "(", ")",
]


@settings(max_examples=200, deadline=None)
@given(st.lists(st.sampled_from(IMP_TOKENS), max_size=20).map(" ".join))
def test_imp_parser_total_on_token_soup(source):
    from repro.languages.imp_syntax import parse_imp, pretty_imp
    from repro.languages.imperative import normalize_seq

    try:
        command = parse_imp(source)
    except (LexError, ParseError) as exc:
        assert exc.location is not None
        return
    assert normalize_seq(parse_imp(pretty_imp(command))) == normalize_seq(command)
