"""``repro record`` / ``repro analyze``: the post-hoc monitoring CLI.

Beyond the happy path, the analyzer is the part of the toolchain that
meets files from outside the process — every malformed input it can see
must come back as a located ``error:`` diagnostic and exit code 1,
never a traceback.
"""

import json

import pytest

from repro.cli import main

FAC = "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) in fac 5"


@pytest.fixture
def trace_file(tmp_path, capsys):
    path = str(tmp_path / "trace.jsonl")
    assert main(["record", "-e", FAC, "-o", path]) == 0
    capsys.readouterr()  # drain the record run's own output
    return path


class TestRecord:
    def test_prints_answer_and_trace_summary(self, capsys, tmp_path):
        path = str(tmp_path / "t.jsonl")
        assert main(["record", "-e", FAC, "-o", path]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "120"
        assert f"trace: {path}" in captured.err
        assert "events" in captured.err

    def test_sampling_flags(self, capsys, tmp_path):
        path = str(tmp_path / "t.jsonl")
        assert (
            main(
                [
                    "record", "-e", FAC, "-o", path,
                    "--sample", "0.5", "--seed", "7",
                ]
            )
            == 0
        )
        assert "sampled out" in capsys.readouterr().err

    def test_bad_sample_rate_is_an_error(self, capsys, tmp_path):
        path = str(tmp_path / "t.jsonl")
        code = main(["record", "-e", FAC, "-o", path, "--sample", "2.0"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_site_filter(self, capsys, tmp_path):
        path = str(tmp_path / "t.jsonl")
        assert (
            main(
                [
                    "record", "-e", "({p0}: 1) + ({p1}: 2)",
                    "-o", path, "--sites", "p1",
                ]
            )
            == 0
        )
        assert "1/2 sites" in capsys.readouterr().err


class TestAnalyze:
    def test_fold_single_stack(self, capsys, trace_file):
        assert main(["analyze", trace_file, "--monitors", "count"]) == 0
        out = capsys.readouterr().out
        assert "120" in out
        assert "'fac': 6" in out

    def test_fold_many_stacks(self, capsys, trace_file):
        assert (
            main(
                [
                    "analyze", trace_file,
                    "--monitors", "count",
                    "--monitors", "trace",
                    "--workers", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "=== stack: count ===" in out
        assert "=== stack: trace ===" in out

    def test_list_sites(self, capsys, trace_file):
        assert main(["analyze", trace_file, "--list-sites"]) == 0
        assert "0: {fac}" in capsys.readouterr().out

    def test_metrics_flag(self, capsys, trace_file):
        assert (
            main(["analyze", trace_file, "--monitors", "count", "--metrics"])
            == 0
        )
        assert "steps" in capsys.readouterr().out

    def test_no_monitors_is_an_error(self, capsys, trace_file):
        assert main(["analyze", trace_file]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--monitors" in err


class TestAnalyzeDiagnostics:
    """Malformed traces: located errors, exit 1, no traceback."""

    def assert_located_error(self, capsys, code, path):
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert path in err
        assert "Traceback" not in err
        return err

    def test_empty_trace(self, capsys, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        code = main(["analyze", path, "--monitors", "count"])
        err = self.assert_located_error(capsys, code, path)
        assert "empty" in err

    def test_missing_trace_file(self, capsys, tmp_path):
        code = main(["analyze", str(tmp_path / "nope.jsonl"), "--monitors", "count"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_truncated_final_line(self, capsys, tmp_path, trace_file):
        with open(trace_file, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(trace_file, "w", encoding="utf-8") as handle:
            handle.write(text[:-20])
        code = main(["analyze", trace_file, "--monitors", "count"])
        err = self.assert_located_error(capsys, code, trace_file)
        assert "--allow-truncated" in err

    def test_allow_truncated_recovers(self, capsys, tmp_path, trace_file):
        with open(trace_file, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(trace_file, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])  # drop the end record entirely
        assert (
            main(
                [
                    "analyze", trace_file,
                    "--monitors", "count",
                    "--allow-truncated",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "<truncated trace: no recorded answer>" in out
        assert "'fac': 6" in out

    def test_unknown_event_type(self, capsys, tmp_path, trace_file):
        with open(trace_file, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines.insert(1, '{"t":"zap"}\n')
        with open(trace_file, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        code = main(["analyze", trace_file, "--monitors", "count"])
        err = self.assert_located_error(capsys, code, trace_file)
        assert ":2:" in err
        assert "unknown event type" in err

    def test_garbage_mid_file(self, capsys, tmp_path, trace_file):
        with open(trace_file, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines.insert(2, "{not json\n")
        with open(trace_file, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        code = main(["analyze", trace_file, "--monitors", "count"])
        err = self.assert_located_error(capsys, code, trace_file)
        assert ":3:" in err

    def test_version_bump(self, capsys, tmp_path, trace_file):
        with open(trace_file, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        header = json.loads(lines[0])
        header["trace_version"] = 99
        lines[0] = json.dumps(header) + "\n"
        with open(trace_file, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        code = main(["analyze", trace_file, "--monitors", "count"])
        err = self.assert_located_error(capsys, code, trace_file)
        assert "re-record" in err


class TestRecordModeRunAndBatch:
    def test_batch_record_mode_emits_trace_path(self, capsys, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps(
                {
                    "program": FAC,
                    "tools": "count",
                    "mode": "record",
                    "record_dir": str(tmp_path / "traces"),
                }
            )
            + "\n"
        )
        out_path = tmp_path / "results.jsonl"
        assert (
            main(["batch", str(requests), "--output", str(out_path)]) == 0
        )
        [result] = [
            json.loads(line) for line in out_path.read_text().splitlines()
        ]
        assert result["ok"] is True
        assert result["trace"].endswith(".jsonl")
        assert main(["analyze", result["trace"], "--monitors", "count"]) == 0
        assert "'fac': 6" in capsys.readouterr().out
