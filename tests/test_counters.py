"""Figure 4: the pair-counter profiler."""

from repro.languages import strict
from repro.monitoring.derive import run_monitored
from repro.monitors import LabelCounterMonitor, PairCounterMonitor
from repro.syntax.parser import parse


class TestPairCounter:
    def test_paper_figure4_result(self, paper_counter_program):
        """The paper: monitoring fac 5 yields sigma = <1, 5>."""
        result = run_monitored(strict, paper_counter_program, PairCounterMonitor())
        assert result.answer == 120
        assert result.report() == (1, 5)

    def test_zero_iterations(self):
        program = parse(
            "letrec fac = lambda x. if (x = 0) then {A}: 1 else {B}: (x * fac (x - 1)) in fac 0"
        )
        result = run_monitored(strict, program, PairCounterMonitor())
        assert result.report() == (1, 0)

    def test_custom_labels(self):
        program = parse("{yes}: 1 + {no}: ({yes}: 2)")
        monitor = PairCounterMonitor("yes", "no")
        result = run_monitored(strict, program, monitor)
        assert result.report() == (2, 1)

    def test_other_labels_ignored(self):
        program = parse("{A}: 1 + {C}: 2")
        result = run_monitored(strict, program, PairCounterMonitor())
        assert result.report() == (1, 0)

    def test_namespaced(self):
        program = parse("{ctr: A}: 1 + {A}: 2")
        result = run_monitored(
            strict, program, PairCounterMonitor(namespace="ctr", key="ns")
        )
        assert result.report("ns") == (1, 0)


class TestLabelCounter:
    def test_counts_per_label(self):
        program = parse(
            "letrec f = lambda n. if n = 0 then {done}: 0 else {loop}: f (n - 1) in f 3"
        )
        result = run_monitored(strict, program, LabelCounterMonitor())
        assert result.report() == {"done": 1, "loop": 3}

    def test_restricted_labels(self):
        program = parse("{a}: 1 + {b}: 2")
        monitor = LabelCounterMonitor(labels={"a"})
        result = run_monitored(strict, program, monitor)
        assert result.report() == {"a": 1}

    def test_no_hits_empty_state(self):
        result = run_monitored(strict, parse("1 + 1"), LabelCounterMonitor())
        assert result.report() == {}
